//! The sampling engine: sweep a site's fleet over the snapshot window.
//!
//! For every node and every sample instant the collector evaluates the
//! utilisation source, maps it through the node's power model, and pushes
//! the true wall power through each configured instrument's error model.
//! Node sweeps run in parallel over fixed-size chunks (see [`crate::par`])
//! with per-node deterministic RNG streams, so results are bit-identical
//! regardless of worker count — `collect` with 1 worker equals `collect`
//! with 16.

use crate::error::{TelemetryError, TelemetryResult};
use crate::meter::{MeterErrorModel, MeterKind, PowerMeter};
use crate::par::FillBackend;
use crate::power::PowerCurve;
use crate::register::{decode_register_readings, CumulativeRegister};
use crate::sources::{splitmix64, UtilizationSource};
use crate::timeseries::{GapPolicy, PowerSeries};
use crate::NodePowerModel;
use iriscast_units::{Energy, Period, Power, SimDuration, Timestamp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-site node identifier (index across the site's groups).
pub type NodeId = u64;

/// Nodes processed per parallel chunk. Fixed (rather than derived from the
/// worker count) so the floating-point reduction order — and therefore the
/// output — is identical for any parallelism level.
const CHUNK_NODES: usize = 64;

/// One homogeneous group of nodes within a site's telemetry config.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeGroupTelemetry {
    /// Label for reports (usually the inventory spec name).
    pub label: String,
    /// Number of monitored nodes in the group.
    pub count: u32,
    /// Power model shared by the group's nodes.
    pub power_model: NodePowerModel,
}

/// Everything the collector needs to know about one site.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SiteTelemetryConfig {
    /// Site short code (Table 2 row label).
    pub site_code: String,
    /// Monitored node groups.
    pub groups: Vec<NodeGroupTelemetry>,
    /// Which measurement methods exist at the site (Table 2's blank cells
    /// are methods a site simply did not have).
    pub methods: Vec<MeterKind>,
    /// Fraction of nodes whose BMC actually reports IPMI readings
    /// (Durham/SCARF have large non-reporting populations).
    pub ipmi_node_coverage: f64,
    /// Extra machine-room load the facility meter sees beyond the node
    /// wall power (switchgear, room networking), as a fraction.
    pub facility_overhead_frac: f64,
    /// Sampling interval for on-line methods (PDU/IPMI/Turbostat).
    pub sample_step: SimDuration,
    /// Per-site RNG seed.
    pub seed: u64,
}

impl SiteTelemetryConfig {
    /// A config with every method available, full IPMI coverage, no
    /// facility overhead, 30-second sampling.
    pub fn new(site_code: impl Into<String>, groups: Vec<NodeGroupTelemetry>, seed: u64) -> Self {
        SiteTelemetryConfig {
            site_code: site_code.into(),
            groups,
            methods: MeterKind::ALL.to_vec(),
            ipmi_node_coverage: 1.0,
            facility_overhead_frac: 0.0,
            sample_step: SimDuration::from_secs(30),
            seed,
        }
    }

    /// Total monitored nodes.
    pub fn total_nodes(&self) -> u32 {
        self.groups.iter().map(|g| g.count).sum()
    }

    /// Solves for the single site-wide utilisation that makes the expected
    /// mean site wall power equal `target` (linear power curves assumed,
    /// exact for them). Clamped to `[0, 1]`.
    ///
    /// This is the calibration inverse used to reproduce published site
    /// energies: Table 2 reports energies, the simulator needs
    /// utilisations.
    pub fn solve_utilization(&self, target: Power) -> f64 {
        let idle_sum: f64 = self
            .groups
            .iter()
            .map(|g| g.power_model.idle().watts() * f64::from(g.count))
            .sum();
        let dynamic_sum: f64 = self
            .groups
            .iter()
            .map(|g| (g.power_model.max() - g.power_model.idle()).watts() * f64::from(g.count))
            .sum();
        if dynamic_sum <= 0.0 {
            return 0.0;
        }
        ((target.watts() - idle_sum) / dynamic_sum).clamp(0.0, 1.0)
    }

    /// Number of nodes (prefix of the id space) that report IPMI. The
    /// coverage is clamped defensively: [`SiteCollector::collect_config`]
    /// accepts borrowed configs that never went through
    /// [`SiteCollector::new`]'s validation.
    fn ipmi_reporting_nodes(&self) -> u64 {
        let total = f64::from(self.total_nodes());
        (self.ipmi_node_coverage.clamp(0.0, 1.0) * total).round() as u64
    }
}

/// One parallel chunk's accumulators: watts sums per (method, step).
///
/// Chunk results must stay materialised per chunk (not merged into
/// per-worker running sums) because the fold below adds them in global
/// chunk order — floating-point addition is non-associative, so any
/// other bracketing would break the `collect(1 worker) == collect(16
/// workers)` bit-identity guarantee. What *is* reusable is the storage:
/// a [`CollectScratch`] keeps these buffers alive across collect calls.
#[derive(Debug, Default)]
struct ChunkAcc {
    truth: Vec<f64>,
    pdu: Vec<f64>,
    ipmi: Vec<f64>,
    turbo: Vec<f64>,
    /// Flat per-node state for the chunk's sweep (see [`NodeLanes`]).
    lanes: NodeLanes,
}

impl ChunkAcc {
    /// Zeroes the four accumulators at `steps` samples, reusing their
    /// capacity.
    fn reset(&mut self, steps: usize) {
        for v in [
            &mut self.truth,
            &mut self.pdu,
            &mut self.ipmi,
            &mut self.turbo,
        ] {
            v.clear();
            v.resize(steps, 0.0);
        }
    }
}

/// Per-node state of one chunk, structure-of-arrays: the sweep's inner
/// loops walk flat `f64` columns (power-envelope parameters, hold-last
/// registers, the per-step utilisation/wall columns) instead of chasing
/// per-node structs, and the per-node RNG streams sit in one contiguous
/// column. Primed per collect from the site config; the columns keep
/// their capacity inside the scratch arena, so warm collects allocate
/// nothing here.
#[derive(Debug, Default)]
struct NodeLanes {
    /// Per-node deterministic RNG streams (seeded from site seed ⊕ id).
    rng: Vec<StdRng>,
    /// Idle wall power (W).
    idle_w: Vec<f64>,
    /// Dynamic range max − idle (W).
    span_w: Vec<f64>,
    /// Utilisation→power curve shape.
    curve: Vec<PowerCurve>,
    /// Fraction of wall power the node's IPMI/BMC reports.
    ipmi_share: Vec<f64>,
    /// Fraction of wall power RAPL covers.
    rapl_share: Vec<f64>,
    /// Whether this node's BMC reports at all (method present + inside
    /// the site's coverage prefix).
    ipmi_on: Vec<bool>,
    /// Hold-last registers bridging instrument dropouts, per method.
    held_pdu: Vec<f64>,
    held_ipmi: Vec<f64>,
    held_turbo: Vec<f64>,
    /// Per-step scratch columns: utilisation in, true wall power out.
    util: Vec<f64>,
    wall: Vec<f64>,
}

impl NodeLanes {
    /// Rebuilds every column for nodes `lo..hi` of `cfg`'s id space,
    /// reusing capacity. The group walk replaces the old per-node
    /// `model_for` scan.
    fn prime(&mut self, cfg: &SiteTelemetryConfig, lo: u64, hi: u64, ipmi_limit: u64) {
        let NodeLanes {
            rng,
            idle_w,
            span_w,
            curve,
            ipmi_share,
            rapl_share,
            ipmi_on,
            held_pdu,
            held_ipmi,
            held_turbo,
            util,
            wall,
        } = self;
        rng.clear();
        idle_w.clear();
        span_w.clear();
        curve.clear();
        ipmi_share.clear();
        rapl_share.clear();
        ipmi_on.clear();
        held_pdu.clear();
        held_ipmi.clear();
        held_turbo.clear();

        let ipmi_method = cfg.methods.contains(&MeterKind::Ipmi);
        let mut group_start = 0u64;
        for g in &cfg.groups {
            let group_end = group_start + u64::from(g.count);
            let (a, b) = (group_start.max(lo), group_end.min(hi));
            if a < b {
                let m = &g.power_model;
                let idle = m.idle().watts();
                for id in a..b {
                    rng.push(StdRng::seed_from_u64(splitmix64(cfg.seed ^ (id + 1))));
                    idle_w.push(idle);
                    span_w.push((m.max() - m.idle()).watts());
                    curve.push(m.curve());
                    ipmi_share.push(m.ipmi_share);
                    rapl_share.push(m.rapl_share);
                    ipmi_on.push(ipmi_method && id < ipmi_limit);
                    held_pdu.push(idle);
                    held_ipmi.push(m.ipmi_visible(m.idle()).watts());
                    held_turbo.push(m.rapl_visible(m.idle()).watts());
                }
            }
            group_start = group_end;
            if group_start >= hi {
                break;
            }
        }
        let n = (hi - lo) as usize;
        debug_assert_eq!(rng.len(), n, "lane columns must cover the chunk");
        util.clear();
        util.resize(n, 0.0);
        wall.clear();
        wall.resize(n, 0.0);
    }
}

/// The per-instrument constants of one sweep: which observation passes
/// run and each pass's error model. Derived once per collect from the
/// site config and shared between the batch and stepped paths.
#[derive(Clone, Copy, Debug)]
struct MeterPasses {
    pdu_err: MeterErrorModel,
    ipmi_err: MeterErrorModel,
    turbo_err: MeterErrorModel,
    do_pdu: bool,
    do_ipmi: bool,
    do_turbo: bool,
}

impl MeterPasses {
    fn for_config(cfg: &SiteTelemetryConfig) -> Self {
        let has = |k: MeterKind| cfg.methods.contains(&k);
        MeterPasses {
            pdu_err: PowerMeter::standard(MeterKind::Pdu).error,
            ipmi_err: PowerMeter::standard(MeterKind::Ipmi).error,
            turbo_err: PowerMeter::standard(MeterKind::Turbostat).error,
            // The facility meter reads the PDU-level aggregate plus room
            // overhead, so it needs the PDU pass even without PDUs.
            do_pdu: has(MeterKind::Pdu) || has(MeterKind::Facility),
            do_ipmi: has(MeterKind::Ipmi),
            do_turbo: has(MeterKind::Turbostat),
        }
    }
}

/// How a site-wide meter outage reads while the instrument is dark.
///
/// Per-sample dropouts (an instrument's own `dropout_prob`) are bridged
/// by the hold-last registers inside the sweep; a [`DropoutMode`]
/// describes the *site-level* failure a fault injector drives — the PDU
/// head-end dies, the BMC network partition drops every node at once.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DropoutMode {
    /// The aggregation layer keeps serving each node's last good reading
    /// — the outage is invisible in the series but the numbers are stale.
    HoldLast,
    /// The samples are simply missing: the series carries NaN gaps for
    /// the outage, to be reconstructed later under a [`GapPolicy`] (or
    /// refused as [`TelemetryError::UnrecoverableGap`] when nothing
    /// valid remains).
    Gap,
}

/// The site-wide meter outages in force at one sample instant: per
/// on-line method, dark (`Some(mode)`) or reporting (`None`).
///
/// The default is all-clear, and an all-clear sweep is bit-identical to
/// one that never heard of faults — the kernel takes the unfaulted path
/// (same arithmetic, same RNG draw order) whenever a method is up. While
/// a method is dark it draws **nothing** from the node's RNG stream (a
/// dead instrument measures nothing); the stream is shared across the
/// node's instrument passes, so observations after the outage — on any
/// method — differ from an unfaulted run's. Only the fault-free case is
/// bit-pinned.
///
/// The facility meter cannot be injected here: its readings derive from
/// the PDU-level aggregate through a cumulative register, so facility
/// outages are modelled upstream (fault the PDU feed) and
/// [`StepFaults::with`] refuses [`MeterKind::Facility`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StepFaults {
    pdu: Option<DropoutMode>,
    ipmi: Option<DropoutMode>,
    turbo: Option<DropoutMode>,
}

impl StepFaults {
    /// No outage on any method — the default, and the mode every
    /// non-fault-aware path sweeps under.
    pub fn clear() -> Self {
        StepFaults::default()
    }

    /// Whether no method is dark.
    pub fn is_clear(&self) -> bool {
        *self == StepFaults::default()
    }

    /// Builder: this sweep instant has `method` dark under `mode`.
    ///
    /// # Panics
    /// On [`MeterKind::Facility`] — register-derived, not injectable.
    pub fn with(mut self, method: MeterKind, mode: DropoutMode) -> Self {
        self.set(method, Some(mode));
        self
    }

    /// Marks `method` dark (`Some`) or reporting (`None`).
    ///
    /// # Panics
    /// On [`MeterKind::Facility`] — register-derived, not injectable.
    pub fn set(&mut self, method: MeterKind, mode: Option<DropoutMode>) {
        match method {
            MeterKind::Pdu => self.pdu = mode,
            MeterKind::Ipmi => self.ipmi = mode,
            MeterKind::Turbostat => self.turbo = mode,
            MeterKind::Facility => panic!(
                "facility readings derive from the PDU aggregate; \
                 inject the PDU feed instead"
            ),
        }
    }

    /// The outage mode in force for `method` (`None` = reporting).
    /// Facility always reports `None`.
    pub fn get(&self, method: MeterKind) -> Option<DropoutMode> {
        match method {
            MeterKind::Pdu => self.pdu,
            MeterKind::Ipmi => self.ipmi,
            MeterKind::Turbostat => self.turbo,
            MeterKind::Facility => None,
        }
    }
}

/// One sample instant of one chunk's sweep: evaluate utilisation → true
/// wall power for the chunk's nodes, then push it through each
/// configured instrument pass, accumulating nodes in ascending id
/// order.
///
/// This is the single shared kernel of the collector. The batch path
/// iterates time *inside* a chunk, the stepped path iterates chunks
/// inside a time step — both land here, so the arithmetic, the
/// accumulation bracketing, and each node's RNG draw order (PDU, then
/// IPMI, then Turbostat within a step, streams per node) are identical
/// by construction, which is what makes the two paths bit-identical.
///
/// `faults` carries site-wide outages in force at this instant. A dark
/// method skips its observation pass entirely (no RNG draws — a dead
/// instrument measures nothing): hold-last outages sum the per-node held
/// registers, gap outages write NaN into the accumulator column. The
/// all-clear case runs exactly the pre-fault code path.
fn sweep_chunk_step(
    acc: &mut ChunkAcc,
    passes: &MeterPasses,
    s: usize,
    t: Timestamp,
    lo: u64,
    utilization: &dyn UtilizationSource,
    faults: StepFaults,
) {
    let ChunkAcc {
        truth,
        pdu,
        ipmi,
        turbo,
        lanes,
    } = acc;
    let n = lanes.util.len();
    utilization.fill_step(lo, t, &mut lanes.util);
    let mut sum = 0.0;
    for j in 0..n {
        let w =
            lanes.idle_w[j] + lanes.span_w[j] * lanes.curve[j].apply(lanes.util[j].clamp(0.0, 1.0));
        lanes.wall[j] = w;
        sum += w;
    }
    truth[s] = sum;
    if passes.do_pdu {
        match faults.get(MeterKind::Pdu) {
            None => {
                let mut sum = 0.0;
                for j in 0..n {
                    if let Some(r) = passes
                        .pdu_err
                        .observe_watts(lanes.wall[j], &mut lanes.rng[j])
                    {
                        lanes.held_pdu[j] = r;
                    }
                    sum += lanes.held_pdu[j];
                }
                pdu[s] = sum;
            }
            Some(DropoutMode::HoldLast) => {
                let mut sum = 0.0;
                for j in 0..n {
                    sum += lanes.held_pdu[j];
                }
                pdu[s] = sum;
            }
            Some(DropoutMode::Gap) => pdu[s] = f64::NAN,
        }
    }
    if passes.do_ipmi {
        match faults.get(MeterKind::Ipmi) {
            None => {
                let mut sum = 0.0;
                for j in 0..n {
                    if lanes.ipmi_on[j] {
                        if let Some(r) = passes
                            .ipmi_err
                            .observe_watts(lanes.wall[j] * lanes.ipmi_share[j], &mut lanes.rng[j])
                        {
                            lanes.held_ipmi[j] = r;
                        }
                        sum += lanes.held_ipmi[j];
                    }
                }
                ipmi[s] = sum;
            }
            Some(DropoutMode::HoldLast) => {
                let mut sum = 0.0;
                for j in 0..n {
                    if lanes.ipmi_on[j] {
                        sum += lanes.held_ipmi[j];
                    }
                }
                ipmi[s] = sum;
            }
            Some(DropoutMode::Gap) => ipmi[s] = f64::NAN,
        }
    }
    if passes.do_turbo {
        match faults.get(MeterKind::Turbostat) {
            None => {
                let mut sum = 0.0;
                for j in 0..n {
                    if let Some(r) = passes
                        .turbo_err
                        .observe_watts(lanes.wall[j] * lanes.rapl_share[j], &mut lanes.rng[j])
                    {
                        lanes.held_turbo[j] = r;
                    }
                    sum += lanes.held_turbo[j];
                }
                turbo[s] = sum;
            }
            Some(DropoutMode::HoldLast) => {
                let mut sum = 0.0;
                for j in 0..n {
                    sum += lanes.held_turbo[j];
                }
                turbo[s] = sum;
            }
            Some(DropoutMode::Gap) => turbo[s] = f64::NAN,
        }
    }
}

/// Reusable buffers for [`SiteCollector::collect_with`]: the per-chunk
/// accumulator arena and a pool of `f64` buffers for fold targets and
/// output series.
///
/// A cold `collect` allocates `4 × steps` doubles per node chunk plus
/// the output series; in a hot loop (the full-federation snapshot bench,
/// a day-sweep) that allocator traffic dominates. Holding one scratch
/// across calls — and feeding finished results back through
/// [`CollectScratch::recycle`] — makes the per-sample data path
/// allocation-free after warm-up: buffers are drawn from the pool,
/// zeroed, filled, and either returned or handed to the caller inside
/// the result (to come back at the next `recycle`).
#[derive(Debug, Default)]
pub struct CollectScratch {
    /// Per-chunk accumulator arena, grown to the largest chunk count
    /// seen and reused verbatim after that.
    chunks: Vec<ChunkAcc>,
    /// Recycled `f64` buffers for fold targets, series payloads and
    /// register readings.
    pool: Vec<Vec<f64>>,
}

impl CollectScratch {
    /// An empty scratch; buffers are grown on first use. Constructing
    /// one is only worth it if it is then threaded through
    /// [`SiteCollector::collect_with`] calls — hence `#[must_use]`.
    #[must_use = "a scratch only pays off when passed to collect_with"]
    pub fn new() -> Self {
        CollectScratch::default()
    }

    /// Runs `f` with **this thread's** persistent scratch arena — the
    /// per-worker ownership model fleet-scale federation sweeps use.
    ///
    /// When thousands of sites are sharded across the worker pool, a
    /// scratch per *call* would rebuild the chunk arena 10,000 times and
    /// a single shared scratch would serialise the workers; one arena
    /// per worker **thread** is the right granularity. Pool workers are
    /// persistent (see [`crate::par::FillBackend::Pool`]), so the arena
    /// warms up once per thread per process and every later site collect
    /// on that worker reuses it. Results are bit-identical to any other
    /// scratch provenance — buffers never influence arithmetic.
    ///
    /// Re-entrancy: `f` must not call `with_thread_local` again on the
    /// same thread (the arena is exclusively borrowed for the duration);
    /// doing so panics with a borrow error rather than corrupting state.
    pub fn with_thread_local<R>(f: impl FnOnce(&mut CollectScratch) -> R) -> R {
        thread_local! {
            static SCRATCH: std::cell::RefCell<CollectScratch> =
                std::cell::RefCell::new(CollectScratch::new());
        }
        SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
    }

    /// Reclaims a finished result's buffers into the pool, so the next
    /// [`SiteCollector::collect_with`] call can reuse them instead of
    /// allocating.
    ///
    /// This **consumes and dismantles** `result`: its truth series,
    /// per-method series and facility register readings are torn down
    /// into raw buffers that later collects will zero and overwrite —
    /// recycle a result only once nothing else needs it (clones taken
    /// from it earlier stay valid; they own their data). The call never
    /// touches the chunk-accumulator arena, which is always safe to
    /// reuse because each collect re-zeroes it.
    pub fn recycle(&mut self, result: SiteTelemetryResult) {
        let SiteTelemetryResult {
            truth,
            series,
            facility_register,
            ..
        } = result;
        self.pool.push(truth.into_watts());
        for (_, s) in series {
            self.pool.push(s.into_watts());
        }
        if let Some(readings) = facility_register {
            self.pool.push(readings);
        }
    }

    /// A zeroed buffer of `len` samples, drawn from the pool when one is
    /// available.
    fn take_zeroed(&mut self, len: usize) -> Vec<f64> {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// An empty buffer (capacity from the pool when available).
    fn take_empty(&mut self) -> Vec<f64> {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf
    }
}

/// The collector: applies a [`SiteTelemetryConfig`] to a window.
#[derive(Clone, Debug)]
pub struct SiteCollector {
    config: SiteTelemetryConfig,
}

/// Per-method site-aggregate observations plus decoded facility readings.
#[derive(Clone, Debug, PartialEq)]
pub struct SiteTelemetryResult {
    /// Site short code.
    pub site_code: String,
    /// Nodes swept.
    pub nodes: u32,
    /// Window covered.
    pub period: Period,
    /// True (instrument-free) site wall power, for validation.
    truth: PowerSeries,
    /// Observed site-aggregate power per available method.
    series: BTreeMap<MeterKind, PowerSeries>,
    /// Raw half-hourly facility register readings (kWh), when the site has
    /// a facility meter.
    pub facility_register: Option<Vec<f64>>,
    facility_energy: Option<Energy>,
}

impl SiteCollector {
    /// Wraps a site config.
    #[must_use = "a collector does nothing until one of its collect methods runs"]
    pub fn new(config: SiteTelemetryConfig) -> Self {
        assert!(
            !config.groups.is_empty(),
            "site {} has no node groups",
            config.site_code
        );
        assert!(
            (0.0..=1.0).contains(&config.ipmi_node_coverage),
            "ipmi coverage must lie in [0, 1]"
        );
        SiteCollector { config }
    }

    /// Read-only access to the config.
    pub fn config(&self) -> &SiteTelemetryConfig {
        &self.config
    }

    /// Sweeps the fleet over `period`, sampling every `config.sample_step`,
    /// with `workers` parallel threads (1 = serial).
    ///
    /// A window with no sample instants (zero/negative length — partial
    /// windows round up to one sample) or a fleet of zero nodes is a
    /// [`TelemetryError`], not a panic. For hot loops that collect
    /// repeatedly, [`SiteCollector::collect_with`] reuses buffers across
    /// calls; this convenience form allocates a fresh scratch each time
    /// and is bit-identical to it.
    pub fn collect(
        &self,
        period: Period,
        utilization: &dyn UtilizationSource,
        workers: usize,
    ) -> TelemetryResult<SiteTelemetryResult> {
        self.collect_with(period, utilization, workers, &mut CollectScratch::new())
    }

    /// [`SiteCollector::collect`] with caller-owned buffers: the
    /// per-chunk accumulator arena and the output buffers are drawn from
    /// `scratch` instead of the allocator. Feed finished results back
    /// through [`CollectScratch::recycle`] and the per-sample data path
    /// allocates nothing after the first call — the warm path the
    /// full-federation snapshot loop runs on. Results are bit-identical
    /// to [`SiteCollector::collect`] at every worker count: only buffer
    /// provenance changes, never arithmetic or fold order.
    pub fn collect_with(
        &self,
        period: Period,
        utilization: &dyn UtilizationSource,
        workers: usize,
        scratch: &mut CollectScratch,
    ) -> TelemetryResult<SiteTelemetryResult> {
        self.collect_with_backend(period, utilization, workers, scratch, FillBackend::Pool)
    }

    /// [`SiteCollector::collect_with`] with an explicit parallel
    /// execution backend. `Pool` (the default everywhere else) reuses
    /// the persistent worker pool; `Spawn` spawns scoped threads per
    /// call like the pre-pool collector did. The two are bit-identical —
    /// chunking, arithmetic and fold order never depend on the backend —
    /// which the property suite pins; this entry point exists so benches
    /// and tests can compare them.
    pub fn collect_with_backend(
        &self,
        period: Period,
        utilization: &dyn UtilizationSource,
        workers: usize,
        scratch: &mut CollectScratch,
        backend: FillBackend,
    ) -> TelemetryResult<SiteTelemetryResult> {
        SiteCollector::collect_config(&self.config, period, utilization, workers, scratch, backend)
    }

    /// One collect straight off a **borrowed** config — the plumbing hot
    /// federation loops run on (`IrisScenario` drives six sites per
    /// snapshot; cloning configs or constructing collectors per call is
    /// avoidable allocator traffic). Identical semantics to the methods
    /// above, except that [`SiteCollector::new`]'s constructor assertions
    /// are not re-run: an empty fleet still surfaces as the typed
    /// [`TelemetryError::NoNodes`], and out-of-range IPMI coverage is
    /// clamped to `[0, 1]` instead of trapping.
    pub fn collect_config(
        cfg: &SiteTelemetryConfig,
        period: Period,
        utilization: &dyn UtilizationSource,
        workers: usize,
        scratch: &mut CollectScratch,
        backend: FillBackend,
    ) -> TelemetryResult<SiteTelemetryResult> {
        let (steps, nodes) = Self::validate_sweep(cfg, period)?;
        let passes = MeterPasses::for_config(cfg);
        let ipmi_limit = cfg.ipmi_reporting_nodes();

        // Each chunk accumulates watts sums per (method, step) into its
        // arena slot, reused (zeroed) from the previous collect call.
        let n_chunks = nodes.div_ceil(CHUNK_NODES);
        if scratch.chunks.len() < n_chunks {
            scratch.chunks.resize_with(n_chunks, ChunkAcc::default);
        }
        let chunk_slots = &mut scratch.chunks[..n_chunks];
        for acc in chunk_slots.iter_mut() {
            acc.reset(steps);
        }
        backend.fill_indexed(chunk_slots, workers, |chunk_idx, acc| {
            let lo = (chunk_idx * CHUNK_NODES) as u64;
            let hi = (((chunk_idx + 1) * CHUNK_NODES).min(nodes)) as u64;
            acc.lanes.prime(cfg, lo, hi, ipmi_limit);

            // Time-outer sweep over flat columns; the per-instant kernel
            // is shared with the stepped path (see `sweep_chunk_step`),
            // so results stay invariant under worker count, backend, and
            // batch-vs-stepped driving.
            for (s, t) in period.iter_steps(cfg.sample_step).enumerate() {
                sweep_chunk_step(acc, &passes, s, t, lo, utilization, StepFaults::clear());
            }
        });

        Ok(Self::assemble(cfg, period, steps, n_chunks, scratch))
    }

    /// Window/fleet validation shared by the batch and stepped paths:
    /// the sample-instant count and node count, or the typed refusal.
    fn validate_sweep(
        cfg: &SiteTelemetryConfig,
        period: Period,
    ) -> TelemetryResult<(usize, usize)> {
        let steps = period.step_count(cfg.sample_step);
        if steps == 0 {
            return Err(TelemetryError::EmptyWindow {
                site: cfg.site_code.clone(),
                window_secs: period.duration().as_secs(),
                step_secs: cfg.sample_step.as_secs(),
            });
        }
        let nodes = cfg.total_nodes() as usize;
        if nodes == 0 {
            return Err(TelemetryError::NoNodes {
                site: cfg.site_code.clone(),
            });
        }
        Ok((steps, nodes))
    }

    /// Folds the first `n_chunks` chunk accumulators of `scratch` into
    /// output series and decoded facility readings. Shared by the batch
    /// and stepped paths; both arrive here with identical accumulator
    /// contents, so everything downstream is identical too.
    fn assemble(
        cfg: &SiteTelemetryConfig,
        period: Period,
        steps: usize,
        n_chunks: usize,
        scratch: &mut CollectScratch,
    ) -> SiteTelemetryResult {
        let has = |k: MeterKind| cfg.methods.contains(&k);

        // Fold chunk partials in chunk order — the fixed bracketing that
        // keeps every worker count bit-identical (see `ChunkAcc`).
        let mut truth = scratch.take_zeroed(steps);
        let mut pdu = scratch.take_zeroed(steps);
        let mut ipmi = scratch.take_zeroed(steps);
        let mut turbo = scratch.take_zeroed(steps);
        for acc in scratch.chunks[..n_chunks].iter() {
            for s in 0..steps {
                truth[s] += acc.truth[s];
                pdu[s] += acc.pdu[s];
                ipmi[s] += acc.ipmi[s];
                turbo[s] += acc.turbo[s];
            }
        }

        let mut series = BTreeMap::new();
        let truth_series = PowerSeries::from_watts(period.start(), cfg.sample_step, truth);
        if has(MeterKind::Pdu) {
            let mut copy = scratch.take_empty();
            copy.extend_from_slice(&pdu);
            series.insert(
                MeterKind::Pdu,
                PowerSeries::from_watts(period.start(), cfg.sample_step, copy),
            );
        }
        if has(MeterKind::Ipmi) {
            series.insert(
                MeterKind::Ipmi,
                PowerSeries::from_watts(period.start(), cfg.sample_step, ipmi),
            );
        } else {
            scratch.pool.push(ipmi);
        }
        if has(MeterKind::Turbostat) {
            series.insert(
                MeterKind::Turbostat,
                PowerSeries::from_watts(period.start(), cfg.sample_step, turbo),
            );
        } else {
            scratch.pool.push(turbo);
        }

        // Facility meter: the PDU-level truth plus room overhead flows
        // through a cumulative register read each half hour.
        let (facility_register, facility_energy) = if has(MeterKind::Facility) {
            let mut fac_watts = scratch.take_empty();
            fac_watts.extend(pdu.iter().map(|w| w * (1.0 + cfg.facility_overhead_frac)));
            scratch.pool.push(pdu);
            let fac_series = PowerSeries::from_watts(period.start(), cfg.sample_step, fac_watts);
            let fac_err = PowerMeter::standard(MeterKind::Facility).error;
            let readings = Self::read_register(&fac_series, cfg, fac_err, scratch.take_empty());
            series.insert(MeterKind::Facility, fac_series);
            let energy = decode_register_readings(&readings, 1_000_000.0);
            (Some(readings), Some(energy))
        } else {
            scratch.pool.push(pdu);
            (None, None)
        };

        SiteTelemetryResult {
            site_code: cfg.site_code.clone(),
            nodes: cfg.total_nodes(),
            period,
            truth: truth_series,
            series,
            facility_register,
            facility_energy,
        }
    }

    /// Simulates half-hourly reads of the facility's cumulative register
    /// into `readings` (assumed empty; pooled by the caller).
    fn read_register(
        site_power: &PowerSeries,
        cfg: &SiteTelemetryConfig,
        err: MeterErrorModel,
        mut readings: Vec<f64>,
    ) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(splitmix64(cfg.seed ^ 0x0FAC_1117));
        let mut register = CumulativeRegister::new(137_911.0);
        let read_every = (SimDuration::SETTLEMENT_PERIOD.as_secs() / site_power.step().as_secs())
            .max(1) as usize;
        readings.push(register.display());
        for (i, &w) in site_power.watts().iter().enumerate() {
            // A gapped feed (NaN, from an upstream PDU outage) leaves the
            // register holding its last total — no energy accumulates
            // while the meter is dark, but the register stays readable.
            if !w.is_nan() {
                // Apply the meter's (tiny) gain/noise to the power before
                // it accumulates — a register integrates the instrument's
                // view.
                let observed = err
                    .observe(Power::from_watts(w), &mut rng)
                    .unwrap_or(Power::from_watts(w));
                register.accumulate(observed * site_power.step());
            }
            if (i + 1) % read_every == 0 {
                readings.push(register.display());
            }
        }
        readings
    }
}

/// A site sweep driven one sample instant at a time — the incremental
/// form of [`SiteCollector::collect`] for event-driven hosts (the
/// simulation engine's clocked collector component ticks one
/// [`SteppedCollector::advance`] per tick).
///
/// Bit-identity: a completed stepped sweep reproduces the batch
/// collector's output exactly. Both paths run the same per-(chunk,
/// instant) kernel; the batch path iterates instants inside each chunk,
/// this one iterates chunks inside each instant — per-chunk state
/// (lanes, per-node RNG streams, hold-last registers) is primed once
/// here just as a batch collect primes it once per chunk, and the final
/// fold is the same chunk-order bracketing. The property suite pins
/// this.
///
/// Unlike the batch path the utilisation source is passed per
/// [`SteppedCollector::advance`], so a host may sample a *live* signal
/// that changes between ticks — the feedback loops batch collection
/// cannot express.
#[derive(Debug)]
pub struct SteppedCollector {
    cfg: SiteTelemetryConfig,
    period: Period,
    steps: usize,
    n_chunks: usize,
    passes: MeterPasses,
    scratch: CollectScratch,
    cursor: usize,
    next_t: Timestamp,
}

impl SteppedCollector {
    /// Validates `cfg` over `period` and primes the sweep state. Refuses
    /// the same degenerate inputs as [`SiteCollector::collect`]
    /// ([`TelemetryError::EmptyWindow`], [`TelemetryError::NoNodes`]).
    pub fn new(cfg: SiteTelemetryConfig, period: Period) -> TelemetryResult<Self> {
        let (steps, nodes) = SiteCollector::validate_sweep(&cfg, period)?;
        let passes = MeterPasses::for_config(&cfg);
        let ipmi_limit = cfg.ipmi_reporting_nodes();
        let n_chunks = nodes.div_ceil(CHUNK_NODES);
        let mut scratch = CollectScratch::new();
        scratch.chunks.resize_with(n_chunks, ChunkAcc::default);
        for (chunk_idx, acc) in scratch.chunks.iter_mut().enumerate() {
            acc.reset(steps);
            let lo = (chunk_idx * CHUNK_NODES) as u64;
            let hi = (((chunk_idx + 1) * CHUNK_NODES).min(nodes)) as u64;
            acc.lanes.prime(&cfg, lo, hi, ipmi_limit);
        }
        Ok(SteppedCollector {
            next_t: period.start(),
            cfg,
            period,
            steps,
            n_chunks,
            passes,
            scratch,
            cursor: 0,
        })
    }

    /// The site config the sweep runs on.
    pub fn config(&self) -> &SiteTelemetryConfig {
        &self.cfg
    }

    /// The window being swept.
    pub fn period(&self) -> Period {
        self.period
    }

    /// The sample instant the next [`SteppedCollector::advance`] will
    /// sweep, `None` once the window is exhausted.
    pub fn next_instant(&self) -> Option<Timestamp> {
        (self.cursor < self.steps).then_some(self.next_t)
    }

    /// Sample instants not yet swept.
    pub fn remaining(&self) -> usize {
        self.steps - self.cursor
    }

    /// Whether every sample instant has been swept.
    pub fn is_complete(&self) -> bool {
        self.cursor == self.steps
    }

    /// Sweeps one sample instant across every chunk (ascending chunk
    /// order) against `utilization`'s view *at that instant*, and
    /// advances the cursor. Returns the instant swept, `None` once the
    /// window is exhausted.
    pub fn advance(&mut self, utilization: &dyn UtilizationSource) -> Option<Timestamp> {
        self.advance_faulted(utilization, StepFaults::clear())
    }

    /// [`SteppedCollector::advance`] under site-wide meter outages: the
    /// methods `faults` marks dark skip their observation pass for this
    /// instant (hold-last serves stale registers, gap leaves NaN). An
    /// all-clear `faults` is exactly [`SteppedCollector::advance`] — the
    /// fault-free sweep stays bit-identical to the batch path.
    pub fn advance_faulted(
        &mut self,
        utilization: &dyn UtilizationSource,
        faults: StepFaults,
    ) -> Option<Timestamp> {
        if self.cursor >= self.steps {
            return None;
        }
        let t = self.next_t;
        for (chunk_idx, acc) in self.scratch.chunks[..self.n_chunks].iter_mut().enumerate() {
            let lo = (chunk_idx * CHUNK_NODES) as u64;
            sweep_chunk_step(acc, &self.passes, self.cursor, t, lo, utilization, faults);
        }
        self.cursor += 1;
        self.next_t = t + self.cfg.sample_step;
        Some(t)
    }

    /// Folds the completed sweep into a [`SiteTelemetryResult`] —
    /// bit-identical to a batch [`SiteCollector::collect`] over the same
    /// config, window, and per-instant utilisation. Refuses an
    /// unfinished sweep with [`TelemetryError::IncompleteSweep`].
    pub fn finish(mut self) -> TelemetryResult<SiteTelemetryResult> {
        if self.cursor < self.steps {
            return Err(TelemetryError::IncompleteSweep {
                site: self.cfg.site_code.clone(),
                done: self.cursor,
                steps: self.steps,
            });
        }
        Ok(SiteCollector::assemble(
            &self.cfg,
            self.period,
            self.steps,
            self.n_chunks,
            &mut self.scratch,
        ))
    }
}

impl SiteTelemetryResult {
    /// Observed energy for `kind` over the window, `None` when the site
    /// lacks the method. Facility energy comes from register decoding;
    /// the others integrate their power series.
    pub fn energy(&self, kind: MeterKind) -> Option<Energy> {
        if kind == MeterKind::Facility {
            return self.facility_energy;
        }
        self.series
            .get(&kind)
            .map(|s| s.integrate(GapPolicy::HoldLast))
    }

    /// Observed site-aggregate power series for `kind`.
    pub fn series(&self, kind: MeterKind) -> Option<&PowerSeries> {
        self.series.get(&kind)
    }

    /// The instrument-free truth — total wall power of the fleet.
    pub fn true_wall_series(&self) -> &PowerSeries {
        &self.truth
    }

    /// True total wall energy.
    pub fn true_energy(&self) -> Energy {
        self.truth.integrate(GapPolicy::Zero)
    }

    /// Bit-level equality: every sample compared by its IEEE-754 bit
    /// pattern, so the NaN holes a gap-mode outage leaves compare equal
    /// to themselves. The derived `PartialEq` follows float semantics
    /// (`NaN != NaN`), which makes a gapped sweep unequal to its own
    /// clone — reproducibility pins on faulted sweeps must use this.
    pub fn bitwise_eq(&self, other: &SiteTelemetryResult) -> bool {
        fn bits<'a>(s: &'a PowerSeries) -> impl Iterator<Item = u64> + 'a {
            s.watts().iter().map(|w| w.to_bits())
        }
        self.site_code == other.site_code
            && self.nodes == other.nodes
            && self.period == other.period
            && self.truth.start() == other.truth.start()
            && self.truth.step() == other.truth.step()
            && bits(&self.truth).eq(bits(&other.truth))
            && self.series.len() == other.series.len()
            && self
                .series
                .iter()
                .zip(&other.series)
                .all(|((ka, sa), (kb, sb))| ka == kb && bits(sa).eq(bits(sb)))
            && match (&self.facility_register, &other.facility_register) {
                (Some(a), Some(b)) => {
                    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
                }
                (None, None) => true,
                _ => false,
            }
            && self.facility_energy.map(|e| e.kilowatt_hours().to_bits())
                == other.facility_energy.map(|e| e.kilowatt_hours().to_bits())
    }

    /// The observed series for `kind` with its NaN gaps reconstructed
    /// under `policy` — the recovery step a downstream assessment runs
    /// after a gap-mode outage. `Ok(None)` when the site lacks the
    /// method; [`TelemetryError::UnrecoverableGap`] when the series
    /// holds no valid sample at all (the instrument was dark for the
    /// whole window — no policy has anything to anchor on).
    pub fn recovered_series(
        &self,
        kind: MeterKind,
        policy: GapPolicy,
    ) -> TelemetryResult<Option<PowerSeries>> {
        let Some(s) = self.series.get(&kind) else {
            return Ok(None);
        };
        if s.valid_fraction() == 0.0 {
            return Err(TelemetryError::UnrecoverableGap {
                site: self.site_code.clone(),
                method: kind,
            });
        }
        Ok(Some(s.fill_gaps(policy)))
    }

    /// Observed energy for `kind` with gaps reconstructed under
    /// `policy` — [`SiteTelemetryResult::recovered_series`] integrated.
    /// Same `Ok(None)` / [`TelemetryError::UnrecoverableGap`] contract.
    pub fn recovered_energy(
        &self,
        kind: MeterKind,
        policy: GapPolicy,
    ) -> TelemetryResult<Option<Energy>> {
        Ok(self
            .recovered_series(kind, policy)?
            .map(|s| s.integrate(policy)))
    }

    /// The paper's Table 2 convention for a site's headline energy: the
    /// most upstream available method (Facility, else PDU, else IPMI, else
    /// Turbostat).
    pub fn best_estimate(&self) -> Option<Energy> {
        for kind in [
            MeterKind::Facility,
            MeterKind::Pdu,
            MeterKind::Ipmi,
            MeterKind::Turbostat,
        ] {
            if let Some(e) = self.energy(kind) {
                return Some(e);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::{FlatUtilization, SyntheticUtilization};
    use iriscast_units::Timestamp;

    fn small_config() -> SiteTelemetryConfig {
        let model = NodePowerModel::linear(Power::from_watts(100.0), Power::from_watts(500.0));
        let mut cfg = SiteTelemetryConfig::new(
            "TST",
            vec![NodeGroupTelemetry {
                label: "compute".into(),
                count: 20,
                power_model: model,
            }],
            42,
        );
        cfg.sample_step = SimDuration::from_secs(300);
        cfg
    }

    fn window() -> Period {
        Period::snapshot_24h()
    }

    #[test]
    fn truth_matches_analytic_energy_for_flat_load() {
        let collector = SiteCollector::new(small_config());
        let r = collector
            .collect(window(), &FlatUtilization(0.5), 2)
            .unwrap();
        // 20 nodes × 300 W × 24 h = 144 kWh.
        let truth = r.true_energy().kilowatt_hours();
        assert!((truth - 144.0).abs() < 1e-9, "truth {truth}");
    }

    #[test]
    fn parallel_equals_serial_exactly() {
        let collector = SiteCollector::new(small_config());
        let util = SyntheticUtilization::calibrated(0.6, 9);
        let serial = collector.collect(window(), &util, 1).unwrap();
        for workers in [2, 4, 8] {
            let par = collector.collect(window(), &util, workers).unwrap();
            assert_eq!(serial, par, "workers = {workers}");
        }
    }

    #[test]
    fn method_ordering_matches_instrument_coverage() {
        let collector = SiteCollector::new(small_config());
        let util = SyntheticUtilization::calibrated(0.55, 3);
        let r = collector.collect(window(), &util, 4).unwrap();
        let pdu = r.energy(MeterKind::Pdu).unwrap().kilowatt_hours();
        let ipmi = r.energy(MeterKind::Ipmi).unwrap().kilowatt_hours();
        let turbo = r.energy(MeterKind::Turbostat).unwrap().kilowatt_hours();
        let fac = r.energy(MeterKind::Facility).unwrap().kilowatt_hours();
        // Turbostat < IPMI < PDU ≈ Facility — the paper's QMUL ordering.
        assert!(turbo < ipmi, "turbostat {turbo} !< ipmi {ipmi}");
        assert!(ipmi < pdu, "ipmi {ipmi} !< pdu {pdu}");
        assert!(
            (fac - pdu).abs() / pdu < 0.01,
            "facility {fac} vs pdu {pdu}"
        );
        // Magnitudes: ipmi/pdu ≈ 0.985, turbo/ipmi ≈ 0.949.
        assert!((ipmi / pdu - 0.985).abs() < 0.01);
        assert!((turbo / ipmi - 0.949).abs() < 0.015);
    }

    #[test]
    fn missing_methods_are_none() {
        let mut cfg = small_config();
        cfg.methods = vec![MeterKind::Ipmi];
        let collector = SiteCollector::new(cfg);
        let r = collector
            .collect(window(), &FlatUtilization(0.4), 2)
            .unwrap();
        assert!(r.energy(MeterKind::Facility).is_none());
        assert!(r.energy(MeterKind::Pdu).is_none());
        assert!(r.energy(MeterKind::Turbostat).is_none());
        assert!(r.energy(MeterKind::Ipmi).is_some());
        // Best estimate falls through to IPMI.
        assert_eq!(r.best_estimate(), r.energy(MeterKind::Ipmi));
    }

    #[test]
    fn ipmi_coverage_reduces_reported_energy() {
        let mut cfg = small_config();
        cfg.ipmi_node_coverage = 0.5;
        let collector = SiteCollector::new(cfg);
        let r = collector
            .collect(window(), &FlatUtilization(0.5), 2)
            .unwrap();
        let pdu = r.energy(MeterKind::Pdu).unwrap().kilowatt_hours();
        let ipmi = r.energy(MeterKind::Ipmi).unwrap().kilowatt_hours();
        let ratio = ipmi / pdu;
        // 50% of nodes × 98.5% gain ≈ 0.49.
        assert!((ratio - 0.4925).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn utilization_solver_calibrates_site_energy() {
        let cfg = small_config();
        // Target: 250 W per node mean → 20 × 250 × 24h = 120 kWh.
        let u = cfg.solve_utilization(Power::from_watts(250.0 * 20.0));
        let collector = SiteCollector::new(cfg);
        let r = collector.collect(window(), &FlatUtilization(u), 2).unwrap();
        let truth = r.true_energy().kilowatt_hours();
        assert!((truth - 120.0).abs() < 0.01, "calibrated truth {truth}");
    }

    #[test]
    fn solver_clamps_out_of_envelope_targets() {
        let cfg = small_config();
        assert_eq!(cfg.solve_utilization(Power::from_watts(0.0)), 0.0);
        assert_eq!(cfg.solve_utilization(Power::from_megawatts(1.0)), 1.0);
    }

    #[test]
    fn facility_register_is_monotone_mod_rollover() {
        let collector = SiteCollector::new(small_config());
        let r = collector
            .collect(window(), &FlatUtilization(0.5), 2)
            .unwrap();
        let readings = r.facility_register.as_ref().unwrap();
        assert_eq!(readings.len(), 49); // initial + 48 half-hours
        for w in readings.windows(2) {
            assert!(w[1] >= w[0], "register went backwards without rollover");
        }
        // Decoded facility energy tracks the truth within register
        // resolution + meter noise.
        let fac = r.energy(MeterKind::Facility).unwrap().kilowatt_hours();
        let truth = r.true_energy().kilowatt_hours();
        assert!((fac - truth).abs() < 2.0, "facility {fac} vs truth {truth}");
    }

    #[test]
    fn heterogeneous_groups_use_their_own_models() {
        let hot = NodePowerModel::linear(Power::from_watts(200.0), Power::from_watts(800.0));
        let cold = NodePowerModel::linear(Power::from_watts(50.0), Power::from_watts(100.0));
        let mut cfg = SiteTelemetryConfig::new(
            "HET",
            vec![
                NodeGroupTelemetry {
                    label: "hot".into(),
                    count: 1,
                    power_model: hot,
                },
                NodeGroupTelemetry {
                    label: "cold".into(),
                    count: 1,
                    power_model: cold,
                },
            ],
            1,
        );
        cfg.sample_step = SimDuration::from_secs(3_600);
        let collector = SiteCollector::new(cfg);
        let r = collector
            .collect(window(), &FlatUtilization(1.0), 1)
            .unwrap();
        // 800 + 100 = 900 W for 24 h = 21.6 kWh.
        assert!((r.true_energy().kilowatt_hours() - 21.6).abs() < 1e-9);
    }

    #[test]
    fn different_seeds_give_different_observations_same_truth() {
        let cfg_a = small_config();
        let mut cfg_b = small_config();
        cfg_b.seed = 43;
        let util = FlatUtilization(0.5);
        let a = SiteCollector::new(cfg_a)
            .collect(window(), &util, 2)
            .unwrap();
        let b = SiteCollector::new(cfg_b)
            .collect(window(), &util, 2)
            .unwrap();
        assert_eq!(a.true_energy(), b.true_energy());
        assert_ne!(
            a.series(MeterKind::Ipmi).unwrap().watts(),
            b.series(MeterKind::Ipmi).unwrap().watts()
        );
    }

    #[test]
    #[should_panic(expected = "no node groups")]
    fn empty_site_rejected() {
        let cfg = SiteTelemetryConfig::new("EMPTY", vec![], 0);
        let _ = SiteCollector::new(cfg);
    }

    #[test]
    fn empty_window_is_a_typed_error_not_a_panic() {
        let collector = SiteCollector::new(small_config());
        // A zero-length window yields zero sample instants (partial
        // windows round up to one sample, so they still collect).
        let empty = Period::starting_at(Timestamp::EPOCH, SimDuration::ZERO);
        let err = collector
            .collect(empty, &FlatUtilization(0.5), 2)
            .unwrap_err();
        assert_eq!(
            err,
            crate::error::TelemetryError::EmptyWindow {
                site: "TST".into(),
                window_secs: 0,
                step_secs: 300,
            }
        );
        assert!(err.to_string().contains("TST"));
    }

    #[test]
    fn zero_node_fleet_is_a_typed_error_not_a_panic() {
        // Groups exist but hold zero monitored nodes — constructible, so
        // it must surface as a value, not an assert.
        let mut cfg = small_config();
        cfg.groups[0].count = 0;
        let collector = SiteCollector::new(cfg);
        let err = collector
            .collect(window(), &FlatUtilization(0.5), 2)
            .unwrap_err();
        assert_eq!(
            err,
            crate::error::TelemetryError::NoNodes { site: "TST".into() }
        );
    }

    #[test]
    fn scratch_arena_collect_is_bit_identical_to_fresh_collect() {
        // The warm path (reused chunk arena + recycled buffers) must
        // reproduce the cold path exactly, at serial and high worker
        // counts, across repeated collects.
        let collector = SiteCollector::new(small_config());
        let util = SyntheticUtilization::calibrated(0.6, 9);
        for workers in [1usize, 16] {
            let fresh = collector.collect(window(), &util, workers).unwrap();
            let mut scratch = CollectScratch::new();
            let cold = collector
                .collect_with(window(), &util, workers, &mut scratch)
                .unwrap();
            assert_eq!(cold, fresh, "cold scratch, workers = {workers}");
            // Recycle and run warm several times: buffers now come from
            // the pool, results must not drift.
            scratch.recycle(cold);
            for round in 0..3 {
                let warm = collector
                    .collect_with(window(), &util, workers, &mut scratch)
                    .unwrap();
                assert_eq!(warm, fresh, "round {round}, workers = {workers}");
                scratch.recycle(warm);
            }
        }
    }

    #[test]
    fn one_scratch_serves_differently_shaped_sites() {
        // A federation loop drives many sites through one scratch; a
        // bigger site after a smaller one must regrow cleanly and still
        // match its fresh-collect result.
        let mut scratch = CollectScratch::new();
        let util = FlatUtilization(0.5);
        for nodes in [20u32, 7, 200] {
            let mut cfg = small_config();
            cfg.groups[0].count = nodes;
            let collector = SiteCollector::new(cfg);
            let fresh = collector.collect(window(), &util, 4).unwrap();
            let warm = collector
                .collect_with(window(), &util, 4, &mut scratch)
                .unwrap();
            assert_eq!(warm, fresh, "{nodes} nodes");
            scratch.recycle(warm);
        }
    }

    #[test]
    fn stepped_sweep_is_bit_identical_to_batch_collect() {
        // Same config, window, and utilisation: advancing one instant at
        // a time must reproduce the batch collector exactly, including
        // the noisy instrument series (per-node RNG streams advance in
        // the same draw order either way). Heterogeneous groups + partial
        // IPMI coverage + >1 chunk to exercise every lane.
        let mut cfg = small_config();
        cfg.groups.push(NodeGroupTelemetry {
            label: "gpu".into(),
            count: 70, // spills into a second 64-node chunk
            power_model: NodePowerModel::linear(Power::from_watts(250.0), Power::from_watts(900.0)),
        });
        cfg.ipmi_node_coverage = 0.7;
        let util = SyntheticUtilization::calibrated(0.6, 9);
        let batch = SiteCollector::new(cfg.clone())
            .collect(window(), &util, 4)
            .unwrap();
        let mut stepped = SteppedCollector::new(cfg, window()).unwrap();
        assert_eq!(stepped.remaining(), 288);
        while stepped.advance(&util).is_some() {}
        assert!(stepped.is_complete());
        assert_eq!(stepped.next_instant(), None);
        let r = stepped.finish().unwrap();
        assert_eq!(r, batch);
    }

    #[test]
    fn stepped_sweep_instants_match_batch_sampling_grid() {
        let cfg = small_config();
        let mut stepped = SteppedCollector::new(cfg.clone(), window()).unwrap();
        let util = FlatUtilization(0.5);
        let mut instants = Vec::new();
        while let Some(t) = stepped.advance(&util) {
            instants.push(t);
        }
        let grid: Vec<_> = window().iter_steps(cfg.sample_step).collect();
        assert_eq!(instants, grid);
    }

    #[test]
    fn unfinished_stepped_sweep_is_a_typed_error() {
        let mut stepped = SteppedCollector::new(small_config(), window()).unwrap();
        stepped.advance(&FlatUtilization(0.5));
        let err = stepped.finish().unwrap_err();
        assert_eq!(
            err,
            TelemetryError::IncompleteSweep {
                site: "TST".into(),
                done: 1,
                steps: 288,
            }
        );
        assert!(err.to_string().contains("1 of 288"));
    }

    #[test]
    fn stepped_collector_refuses_degenerate_inputs() {
        let empty = Period::starting_at(Timestamp::EPOCH, SimDuration::ZERO);
        assert!(matches!(
            SteppedCollector::new(small_config(), empty),
            Err(TelemetryError::EmptyWindow { .. })
        ));
        let mut cfg = small_config();
        cfg.groups[0].count = 0;
        assert!(matches!(
            SteppedCollector::new(cfg, window()),
            Err(TelemetryError::NoNodes { .. })
        ));
    }

    #[test]
    fn result_period_and_counts() {
        let collector = SiteCollector::new(small_config());
        let r = collector
            .collect(window(), &FlatUtilization(0.3), 2)
            .unwrap();
        assert_eq!(r.nodes, 20);
        assert_eq!(r.period.start(), Timestamp::EPOCH);
        assert_eq!(r.site_code, "TST");
        assert_eq!(r.true_wall_series().len(), 288);
    }

    /// Drives a full stepped sweep where `outage` decides the faults in
    /// force at each instant.
    fn sweep_with_faults(
        cfg: SiteTelemetryConfig,
        util: &dyn UtilizationSource,
        outage: impl Fn(Timestamp) -> StepFaults,
    ) -> SiteTelemetryResult {
        let mut stepped = SteppedCollector::new(cfg, window()).unwrap();
        while let Some(t) = stepped.next_instant() {
            stepped.advance_faulted(util, outage(t));
        }
        stepped.finish().unwrap()
    }

    /// An outage over hours 6–12 of the 24 h window.
    fn midday_outage(method: MeterKind, mode: DropoutMode) -> impl Fn(Timestamp) -> StepFaults {
        move |t| {
            if t >= Timestamp::from_hours(6.0) && t < Timestamp::from_hours(12.0) {
                StepFaults::clear().with(method, mode)
            } else {
                StepFaults::clear()
            }
        }
    }

    #[test]
    fn all_clear_faulted_sweep_is_bit_identical_to_batch() {
        let cfg = small_config();
        let util = SyntheticUtilization::calibrated(0.6, 9);
        let batch = SiteCollector::new(cfg.clone())
            .collect(window(), &util, 4)
            .unwrap();
        let faulted = sweep_with_faults(cfg, &util, |_| StepFaults::clear());
        assert_eq!(faulted, batch);
    }

    #[test]
    fn truth_is_unaffected_by_any_outage() {
        // The truth pass is physics, not instrumentation: faulting every
        // injectable method leaves it bit-identical to the clean run.
        let cfg = small_config();
        let util = SyntheticUtilization::calibrated(0.6, 9);
        let clean = SiteCollector::new(cfg.clone())
            .collect(window(), &util, 1)
            .unwrap();
        let faulted = sweep_with_faults(cfg, &util, |_| {
            StepFaults::clear()
                .with(MeterKind::Pdu, DropoutMode::Gap)
                .with(MeterKind::Ipmi, DropoutMode::HoldLast)
                .with(MeterKind::Turbostat, DropoutMode::Gap)
        });
        assert_eq!(faulted.true_wall_series(), clean.true_wall_series());
    }

    #[test]
    fn hold_last_outage_serves_stale_readings_and_draws_no_rng() {
        let cfg = small_config();
        let util = SyntheticUtilization::calibrated(0.6, 9);
        let r = sweep_with_faults(
            cfg,
            &util,
            midday_outage(MeterKind::Pdu, DropoutMode::HoldLast),
        );
        let pdu = r.series(MeterKind::Pdu).unwrap();
        // During the outage every sample repeats the same stale sum: the
        // held registers never update while the meter is dark.
        let grid: Vec<_> = window().iter_steps(SimDuration::from_secs(300)).collect();
        let dark: Vec<f64> = grid
            .iter()
            .zip(pdu.watts())
            .filter(|(t, _)| **t >= Timestamp::from_hours(6.0) && **t < Timestamp::from_hours(12.0))
            .map(|(_, &w)| w)
            .collect();
        assert!(!dark.is_empty());
        assert!(
            dark.iter().all(|&w| w == dark[0]),
            "hold-last outage must freeze the aggregate"
        );
        // No gaps anywhere: hold-last outages are invisible in coverage.
        assert_eq!(pdu.valid_fraction(), 1.0);
        // The truth pass never touches the instrument RNG streams.
        let clean = SiteCollector::new(small_config())
            .collect(window(), &util, 1)
            .unwrap();
        assert_eq!(r.true_wall_series(), clean.true_wall_series());
    }

    #[test]
    fn gap_outage_leaves_nan_exactly_inside_the_outage() {
        let cfg = small_config();
        let util = SyntheticUtilization::calibrated(0.6, 9);
        let r = sweep_with_faults(cfg, &util, midday_outage(MeterKind::Ipmi, DropoutMode::Gap));
        let ipmi = r.series(MeterKind::Ipmi).unwrap();
        for (t, &w) in window()
            .iter_steps(SimDuration::from_secs(300))
            .zip(ipmi.watts())
        {
            let in_outage = t >= Timestamp::from_hours(6.0) && t < Timestamp::from_hours(12.0);
            assert_eq!(w.is_nan(), in_outage, "at {t:?}");
        }
        // 6 of 24 hours dark → 75% valid.
        assert!((ipmi.valid_fraction() - 0.75).abs() < 1e-12);
        // Recovery under a policy fills the gap and integrates.
        let filled = r
            .recovered_series(MeterKind::Ipmi, GapPolicy::HoldLast)
            .unwrap()
            .unwrap();
        assert_eq!(filled.valid_fraction(), 1.0);
        let e = r
            .recovered_energy(MeterKind::Ipmi, GapPolicy::Interpolate)
            .unwrap()
            .unwrap();
        assert!(e.kilowatt_hours() > 0.0);
    }

    #[test]
    fn gapped_sweeps_compare_bitwise_not_by_float_equality() {
        let cfg = small_config();
        let util = SyntheticUtilization::calibrated(0.6, 9);
        let r = sweep_with_faults(
            cfg.clone(),
            &util,
            midday_outage(MeterKind::Ipmi, DropoutMode::Gap),
        );
        // Float equality disqualifies a gapped sweep from equalling its
        // own clone (NaN != NaN) — bitwise_eq is the reproducibility pin.
        assert!(r != r.clone());
        assert!(r.bitwise_eq(&r.clone()));
        // And it still distinguishes genuinely different sweeps.
        let clean = sweep_with_faults(cfg, &util, |_| StepFaults::clear());
        assert!(!r.bitwise_eq(&clean));
    }

    #[test]
    fn whole_window_gap_is_an_unrecoverable_typed_error() {
        let cfg = small_config();
        let util = FlatUtilization(0.5);
        let r = sweep_with_faults(cfg, &util, |_| {
            StepFaults::clear().with(MeterKind::Turbostat, DropoutMode::Gap)
        });
        let err = r
            .recovered_series(MeterKind::Turbostat, GapPolicy::HoldLast)
            .unwrap_err();
        assert_eq!(
            err,
            TelemetryError::UnrecoverableGap {
                site: "TST".into(),
                method: MeterKind::Turbostat,
            }
        );
        assert!(err.to_string().contains("Turbostat"));
        assert_eq!(
            r.recovered_energy(MeterKind::Turbostat, GapPolicy::Zero)
                .unwrap_err(),
            err
        );
        // Methods the site lacks are None, not an error.
        let mut cfg = small_config();
        cfg.methods = vec![MeterKind::Pdu];
        let r = SiteCollector::new(cfg).collect(window(), &util, 1).unwrap();
        assert_eq!(
            r.recovered_series(MeterKind::Ipmi, GapPolicy::HoldLast)
                .unwrap(),
            None
        );
    }

    #[test]
    fn gapped_pdu_feed_holds_the_facility_register() {
        let mut cfg = small_config();
        cfg.facility_overhead_frac = 0.05;
        let util = FlatUtilization(0.5);
        let r = sweep_with_faults(cfg, &util, midday_outage(MeterKind::Pdu, DropoutMode::Gap));
        // The facility series inherits the gap (it derives from the PDU
        // aggregate)...
        let fac = r.series(MeterKind::Facility).unwrap();
        assert!(fac.valid_fraction() < 1.0);
        // ...but the register stays readable and monotone: it simply
        // holds while the feed is dark, so no reading is ever NaN.
        let readings = r.facility_register.as_ref().unwrap();
        assert_eq!(readings.len(), 49);
        assert!(readings.iter().all(|v| !v.is_nan()));
        for w in readings.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // Six dark hours of 24 → roughly a quarter of the energy missing.
        let clean = {
            let mut cfg = small_config();
            cfg.facility_overhead_frac = 0.05;
            SiteCollector::new(cfg).collect(window(), &util, 1).unwrap()
        };
        let lost = r.energy(MeterKind::Facility).unwrap().kilowatt_hours()
            / clean.energy(MeterKind::Facility).unwrap().kilowatt_hours();
        assert!((lost - 0.75).abs() < 0.01, "register kept {lost} of clean");
    }

    #[test]
    #[should_panic(expected = "derive from the PDU aggregate")]
    fn facility_faults_are_refused() {
        let _ = StepFaults::clear().with(MeterKind::Facility, DropoutMode::Gap);
    }

    #[test]
    fn step_faults_accessors() {
        let f = StepFaults::clear();
        assert!(f.is_clear());
        let f = f.with(MeterKind::Pdu, DropoutMode::HoldLast);
        assert!(!f.is_clear());
        assert_eq!(f.get(MeterKind::Pdu), Some(DropoutMode::HoldLast));
        assert_eq!(f.get(MeterKind::Ipmi), None);
        assert_eq!(f.get(MeterKind::Facility), None);
        let mut f = f;
        f.set(MeterKind::Pdu, None);
        assert!(f.is_clear());
    }
}
