//! Typed errors for the telemetry pipeline.
//!
//! The collector validates its window and fleet at the call boundary and
//! reports failures through [`TelemetryError`] instead of panicking —
//! the `assert!`s that used to guard empty windows and node-less sites
//! are now values a caller can handle (a federation sweep should skip a
//! misconfigured site, not abort the whole snapshot).

use crate::meter::MeterKind;
use std::fmt;

/// Result alias for telemetry-layer operations.
pub type TelemetryResult<T> = std::result::Result<T, TelemetryError>;

/// Everything that can go wrong running a telemetry collection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TelemetryError {
    /// The collection window yields zero sample instants — a zero- or
    /// negative-length period. (Partial windows are fine: sampling
    /// rounds up, so any positive window collects at least one sample.)
    EmptyWindow {
        /// The site being collected.
        site: String,
        /// The window length in seconds.
        window_secs: i64,
        /// The configured sample step in seconds.
        step_secs: i64,
    },
    /// The site's groups hold zero monitored nodes in total.
    NoNodes {
        /// The site being collected.
        site: String,
    },
    /// A stepped collection was finalised before sweeping every sample
    /// instant of its window.
    IncompleteSweep {
        /// The site being collected.
        site: String,
        /// Sample instants swept so far.
        done: usize,
        /// Sample instants the window requires.
        steps: usize,
    },
    /// A snapshot interval that cannot tile the sampling grid: zero,
    /// negative, or not a whole multiple of the sample step. Snapshot
    /// windows must open and close exactly on sample instants, or the
    /// per-window sweeps would drift off the batch grid.
    InvalidInterval {
        /// The site being sampled.
        site: String,
        /// The offending snapshot interval in seconds.
        interval_secs: i64,
        /// The configured sample step in seconds.
        step_secs: i64,
    },
    /// A method's series holds no valid samples at all — the instrument
    /// was dark for the entire window, so no gap policy can reconstruct
    /// it (hold-last has nothing to hold, interpolation has no anchors).
    UnrecoverableGap {
        /// The site being collected.
        site: String,
        /// The method whose series is all gap.
        method: MeterKind,
    },
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryError::EmptyWindow {
                site,
                window_secs,
                step_secs,
            } => write!(
                f,
                "site {site}: collection window of {window_secs} s yields no \
                 sample instants at a {step_secs} s step"
            ),
            TelemetryError::NoNodes { site } => {
                write!(f, "site {site}: no monitored nodes to collect from")
            }
            TelemetryError::IncompleteSweep { site, done, steps } => write!(
                f,
                "site {site}: stepped collection finalised after {done} of \
                 {steps} sample instants"
            ),
            TelemetryError::InvalidInterval {
                site,
                interval_secs,
                step_secs,
            } => write!(
                f,
                "site {site}: snapshot interval of {interval_secs} s cannot \
                 tile a {step_secs} s sampling grid"
            ),
            TelemetryError::UnrecoverableGap { site, method } => write!(
                f,
                "site {site}: the {method} series holds no valid samples — \
                 the gap spans the whole window and cannot be recovered"
            ),
        }
    }
}

impl std::error::Error for TelemetryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TelemetryError::EmptyWindow {
            site: "TST".into(),
            window_secs: 0,
            step_secs: 30,
        };
        assert!(e.to_string().contains("TST"));
        assert!(e.to_string().contains("0 s"));
        assert!(e.to_string().contains("30 s"));
        let e = TelemetryError::NoNodes { site: "TST".into() };
        assert!(e.to_string().contains("no monitored nodes"));
        let e = TelemetryError::InvalidInterval {
            site: "TST".into(),
            interval_secs: 100,
            step_secs: 30,
        };
        assert!(e.to_string().contains("100 s"));
        assert!(e.to_string().contains("tile"));
        use std::error::Error as _;
        assert!(e.source().is_none());
    }
}
