//! Multi-level power-measurement simulation stack.
//!
//! The paper's Table 2 compares four ways of measuring the same 24 hours of
//! DRI energy — facility bulk meters, rack PDUs, on-node IPMI, and
//! Turbostat (RAPL) — and finds systematic spread between them: at QMUL,
//! Turbostat reads ~5% below IPMI, which reads ~1.5% below the PDU; at
//! Durham and SCARF, IPMI captures only ~77% of the PDU energy. Those
//! offsets are *physics* (instrument coverage), not noise, and
//! reproducing them requires the measurement stack itself. This crate
//! builds it:
//!
//! * [`PowerSeries`] / [`EnergySeries`] — regular time series with
//!   gap handling, resampling, and power→energy integration;
//! * [`NodePowerModel`] — utilisation→wall-power curves with an explicit
//!   RAPL-visible share (CPU package + DRAM);
//! * [`meter`] — the four instrument models with gain, quantisation,
//!   noise, dropout and per-site coverage;
//! * [`CumulativeRegister`] — facility-meter kWh registers with rollover;
//! * [`collector`] — the parallel sampling engine that sweeps a whole
//!   site's fleet over the snapshot window on flat per-node state
//!   columns (SoA) with deterministic per-node RNG streams;
//! * [`aggregate`] — node→site roll-ups and the Table 2 report structure;
//! * [`quality`] — cross-method adjustment factors (the paper's
//!   "potentially adjusting measurements" discussion);
//! * [`par`] — deterministic chunked parallelism: per-call scoped
//!   threads and a persistent worker pool, bit-identical to each other
//!   and to serial at every worker count.
//!
//! # Example
//!
//! ```
//! use iriscast_telemetry::{NodePowerModel, SyntheticUtilization, UtilizationSource};
//! use iriscast_units::{Power, Timestamp};
//!
//! let model = NodePowerModel::linear(Power::from_watts(140.0), Power::from_watts(620.0));
//! let util = SyntheticUtilization::new(0.6, 0.15, 0.05, 42);
//! let u = util.utilization(3, Timestamp::from_secs(3_600));
//! let p = model.wall_power(u);
//! assert!(p >= model.idle() && p <= model.max());
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod aggregate;
pub mod collector;
pub mod error;
pub mod meter;
pub mod network;
pub mod par;
mod power;
pub mod quality;
pub mod rack;
mod register;
mod sources;
pub mod timeseries;

pub use aggregate::{EnergyByMethod, SiteEnergyReport};
pub use collector::{
    CollectScratch, DropoutMode, NodeGroupTelemetry, NodeId, SiteCollector, SiteTelemetryConfig,
    SiteTelemetryResult, StepFaults, SteppedCollector,
};
pub use error::{TelemetryError, TelemetryResult};
pub use meter::{MeterErrorModel, MeterKind, MeterReading, PowerMeter};
pub use network::{SiteNetwork, SwitchPowerModel};
pub use par::FillBackend;
pub use power::{NodePowerModel, PowerCurve};
pub use quality::{MethodAdjustment, QualityReport};
pub use rack::{rack_energies, RackEnergyReport, RackLayout};
pub use register::{decode_register_readings, CumulativeRegister};
pub use sources::{FlatUtilization, SyntheticUtilization, TraceUtilization, UtilizationSource};
pub use timeseries::{EnergySeries, GapPolicy, PowerSeries};
