//! Instrument models: facility meters, PDUs, IPMI, Turbostat.

use iriscast_units::Power;
use rand::{Rng, StandardNormal};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four measurement methods of the paper's Table 2.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MeterKind {
    /// Machine-room/building bulk meter (revenue grade, cumulative kWh).
    Facility,
    /// Rack power distribution unit (per-outlet or per-rack watts).
    Pdu,
    /// On-node BMC power sensor.
    Ipmi,
    /// RAPL counters read by the `turbostat` tool (CPU package + DRAM).
    Turbostat,
}

impl MeterKind {
    /// All kinds in Table 2 column order.
    pub const ALL: [MeterKind; 4] = [
        MeterKind::Facility,
        MeterKind::Pdu,
        MeterKind::Ipmi,
        MeterKind::Turbostat,
    ];
}

impl fmt::Display for MeterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MeterKind::Facility => "Facility",
            MeterKind::Pdu => "PDU",
            MeterKind::Ipmi => "IPMI",
            MeterKind::Turbostat => "Turbostat",
        };
        f.write_str(s)
    }
}

/// Stochastic error model applied to a true power before it becomes a
/// reading.
///
/// `reading = quantize(gain · truth + offset + noise)`, possibly dropped.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeterErrorModel {
    /// Multiplicative calibration error (1.0 = perfect).
    pub gain: f64,
    /// Additive offset.
    pub offset: Power,
    /// Reading resolution (0 = continuous). IPMI sensors typically report
    /// in 4–8 W steps.
    pub quantum: Power,
    /// Standard deviation of zero-mean Gaussian noise, as a fraction of
    /// the true value.
    pub noise_frac: f64,
    /// Probability that a sample is lost entirely (returns `None`).
    pub dropout: f64,
}

impl MeterErrorModel {
    /// A perfect instrument.
    pub const IDEAL: MeterErrorModel = MeterErrorModel {
        gain: 1.0,
        offset: Power::ZERO,
        quantum: Power::ZERO,
        noise_frac: 0.0,
        dropout: 0.0,
    };

    /// Revenue-grade facility meter: 0.2% gain tolerance, no dropout.
    pub fn facility_grade() -> Self {
        MeterErrorModel {
            gain: 1.0,
            offset: Power::ZERO,
            quantum: Power::ZERO,
            noise_frac: 0.002,
            dropout: 0.0,
        }
    }

    /// Rack PDU: 0.5% noise, occasional missed poll.
    pub fn pdu_grade() -> Self {
        MeterErrorModel {
            gain: 1.0,
            offset: Power::ZERO,
            quantum: Power::from_watts(1.0),
            noise_frac: 0.005,
            dropout: 0.001,
        }
    }

    /// BMC sensor: 4 W quantisation, 2% noise, occasional dropout.
    pub fn ipmi_grade() -> Self {
        MeterErrorModel {
            gain: 1.0,
            offset: Power::ZERO,
            quantum: Power::from_watts(4.0),
            noise_frac: 0.02,
            dropout: 0.003,
        }
    }

    /// RAPL counters: fine-grained but jittery under sampling skew.
    pub fn turbostat_grade() -> Self {
        MeterErrorModel {
            gain: 1.0,
            offset: Power::ZERO,
            quantum: Power::from_watts(0.1),
            noise_frac: 0.015,
            dropout: 0.002,
        }
    }

    /// Applies the error model to a true power. `None` = dropped sample.
    pub fn observe(&self, truth: Power, rng: &mut impl Rng) -> Option<Power> {
        self.observe_watts(truth.watts(), rng)
            .map(Power::from_watts)
    }

    /// [`MeterErrorModel::observe`] on raw watts — the collector's SoA
    /// hot loop runs on flat `f64` columns, so the newtype round-trip is
    /// skipped. The Gaussian noise uses the ziggurat
    /// [`StandardNormal`] fast path (the `rand` shim's
    /// `boxmuller-normal` feature restores the legacy sampler bit for
    /// bit).
    #[inline]
    pub fn observe_watts(&self, truth_w: f64, rng: &mut impl Rng) -> Option<f64> {
        if self.dropout > 0.0 && rng.gen::<f64>() < self.dropout {
            return None;
        }
        let mut w = truth_w * self.gain + self.offset.watts();
        if self.noise_frac > 0.0 {
            let z: f64 = rng.sample(StandardNormal);
            w += truth_w * self.noise_frac * z;
        }
        let q = self.quantum.watts();
        if q > 0.0 {
            w = (w / q).round() * q;
        }
        Some(w.max(0.0))
    }
}

/// A configured instrument: what it is, how wrong it is, how often it
/// samples.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerMeter {
    /// Which measurement method this instrument implements.
    pub kind: MeterKind,
    /// Its error model.
    pub error: MeterErrorModel,
}

impl PowerMeter {
    /// An instrument of `kind` with that kind's default error grade.
    pub fn standard(kind: MeterKind) -> Self {
        let error = match kind {
            MeterKind::Facility => MeterErrorModel::facility_grade(),
            MeterKind::Pdu => MeterErrorModel::pdu_grade(),
            MeterKind::Ipmi => MeterErrorModel::ipmi_grade(),
            MeterKind::Turbostat => MeterErrorModel::turbostat_grade(),
        };
        PowerMeter { kind, error }
    }
}

/// One observed sample (post error model).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeterReading {
    /// The instrument class that produced the reading.
    pub kind: MeterKind,
    /// Observed power, `None` when the sample was dropped.
    pub value: Option<Power>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_meter_is_transparent() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = Power::from_watts(457.3);
        assert_eq!(MeterErrorModel::IDEAL.observe(p, &mut rng), Some(p));
    }

    #[test]
    fn quantisation_rounds_to_grid() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = MeterErrorModel {
            quantum: Power::from_watts(4.0),
            ..MeterErrorModel::IDEAL
        };
        let r = m.observe(Power::from_watts(457.3), &mut rng).unwrap();
        assert_eq!(r, Power::from_watts(456.0));
        let r = m.observe(Power::from_watts(458.1), &mut rng).unwrap();
        assert_eq!(r, Power::from_watts(460.0));
    }

    #[test]
    fn gain_and_offset() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = MeterErrorModel {
            gain: 0.985,
            offset: Power::from_watts(5.0),
            ..MeterErrorModel::IDEAL
        };
        let r = m.observe(Power::from_watts(1_000.0), &mut rng).unwrap();
        assert!((r.watts() - 990.0).abs() < 1e-9);
    }

    #[test]
    fn noise_is_zero_mean_and_scaled() {
        let mut rng = StdRng::seed_from_u64(42);
        let m = MeterErrorModel {
            noise_frac: 0.02,
            ..MeterErrorModel::IDEAL
        };
        let truth = Power::from_watts(500.0);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let r = m.observe(truth, &mut rng).unwrap().watts();
            sum += r;
            sumsq += r * r;
        }
        let mean = sum / n as f64;
        let sd = (sumsq / n as f64 - mean * mean).sqrt();
        assert!((mean - 500.0).abs() < 0.5, "mean {mean}");
        assert!((sd - 10.0).abs() < 0.5, "sd {sd}");
    }

    #[test]
    fn dropout_rate_matches() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = MeterErrorModel {
            dropout: 0.1,
            ..MeterErrorModel::IDEAL
        };
        let n = 50_000;
        let dropped = (0..n)
            .filter(|_| m.observe(Power::from_watts(100.0), &mut rng).is_none())
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "dropout rate {rate}");
    }

    #[test]
    fn readings_never_negative() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = MeterErrorModel {
            noise_frac: 0.5, // absurd noise
            ..MeterErrorModel::IDEAL
        };
        for _ in 0..10_000 {
            let r = m.observe(Power::from_watts(10.0), &mut rng).unwrap();
            assert!(r.watts() >= 0.0);
        }
    }

    #[test]
    fn standard_grades_ranked_by_noise() {
        let f = PowerMeter::standard(MeterKind::Facility).error.noise_frac;
        let p = PowerMeter::standard(MeterKind::Pdu).error.noise_frac;
        let i = PowerMeter::standard(MeterKind::Ipmi).error.noise_frac;
        assert!(f < p && p < i);
    }

    #[test]
    fn display_matches_table2_columns() {
        let names: Vec<String> = MeterKind::ALL.iter().map(|k| k.to_string()).collect();
        assert_eq!(names, ["Facility", "PDU", "IPMI", "Turbostat"]);
    }
}
