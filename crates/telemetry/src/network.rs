//! Network-equipment power: the `E_network` term of the paper's eq. (2).
//!
//! The paper lists the network as a primary active-energy component but
//! none of its sites could meter switches separately (their draw hides
//! inside PDU/facility figures). This module provides the missing
//! substrate: switch power models with the weak load-dependence real
//! switches exhibit (a large base draw plus a small per-active-port
//! increment), fleet sizing heuristics, and energy estimation, so
//! assessments can split the network term out explicitly.

use crate::timeseries::PowerSeries;
use iriscast_units::{Energy, Period, Power, SimDuration};
use serde::{Deserialize, Serialize};

/// Power model for one switch: `P = base + active_ports × per_port`.
///
/// Switch power is dominated by the chassis (fans, ASIC idle, PHYs); the
/// traffic-dependent slice is small — typically under 15% between idle
/// and line rate, which is why network energy is nearly constant and the
/// paper could fold it into facility overheads without large error.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SwitchPowerModel {
    /// Model label for reports.
    pub label: String,
    /// Chassis base power (all ports down).
    pub base: Power,
    /// Extra power per active port at typical utilisation.
    pub per_active_port: Power,
    /// Total ports.
    pub ports: u32,
}

impl SwitchPowerModel {
    /// A 48-port 25 GbE top-of-rack switch.
    pub fn top_of_rack() -> Self {
        SwitchPowerModel {
            label: "48p-25G-ToR".into(),
            base: Power::from_watts(150.0),
            per_active_port: Power::from_watts(1.8),
            ports: 48,
        }
    }

    /// A 32-port 100 GbE aggregation/spine switch.
    pub fn spine() -> Self {
        SwitchPowerModel {
            label: "32p-100G-spine".into(),
            base: Power::from_watts(320.0),
            per_active_port: Power::from_watts(5.5),
            ports: 32,
        }
    }

    /// A campus/border router.
    pub fn border_router() -> Self {
        SwitchPowerModel {
            label: "border-router".into(),
            base: Power::from_watts(450.0),
            per_active_port: Power::from_watts(8.0),
            ports: 16,
        }
    }

    /// Power with `active_ports` ports up (clamped to the port count).
    pub fn power(&self, active_ports: u32) -> Power {
        self.base + self.per_active_port * f64::from(active_ports.min(self.ports))
    }

    /// Power at a fractional port-activity level in `[0, 1]`.
    pub fn power_at(&self, activity: f64) -> Power {
        let active = (activity.clamp(0.0, 1.0) * f64::from(self.ports)).round() as u32;
        self.power(active)
    }
}

/// A site's network estate: switch models with quantities.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SiteNetwork {
    /// `(model, count)` pairs.
    pub switches: Vec<(SwitchPowerModel, u32)>,
}

impl SiteNetwork {
    /// Sizes a conventional leaf–spine estate for `nodes` servers:
    /// one ToR per 40 nodes (dual-homed ports), one spine per 8 ToRs,
    /// and one border router per site.
    pub fn sized_for(nodes: u32) -> Self {
        let tors = nodes.div_ceil(40).max(1);
        let spines = tors.div_ceil(8).max(1);
        SiteNetwork {
            switches: vec![
                (SwitchPowerModel::top_of_rack(), tors),
                (SwitchPowerModel::spine(), spines),
                (SwitchPowerModel::border_router(), 1),
            ],
        }
    }

    /// Total network power at a port-activity level in `[0, 1]`.
    pub fn power_at(&self, activity: f64) -> Power {
        self.switches
            .iter()
            .map(|(m, n)| m.power_at(activity) * f64::from(*n))
            .sum()
    }

    /// Network energy over `period`, holding activity constant — the
    /// first-order estimate (switch power is nearly load-independent).
    pub fn energy(&self, period: Period, activity: f64) -> Energy {
        self.power_at(activity) * period.duration()
    }

    /// Network power series tracking a (diurnal) activity trace sampled
    /// every `step`; `activity_at` maps an hour-of-day to `[0, 1]`.
    pub fn power_series(
        &self,
        period: Period,
        step: SimDuration,
        mut activity_at: impl FnMut(f64) -> f64,
    ) -> PowerSeries {
        let watts: Vec<f64> = period
            .iter_steps(step)
            .map(|t| self.power_at(activity_at(t.hour_of_day())).watts())
            .collect();
        PowerSeries::from_watts(period.start(), step, watts)
    }

    /// Total switch count.
    pub fn device_count(&self) -> u32 {
        self.switches.iter().map(|(_, n)| n).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::GapPolicy;

    #[test]
    fn switch_power_is_base_dominated() {
        let tor = SwitchPowerModel::top_of_rack();
        let idle = tor.power(0);
        let full = tor.power(48);
        assert_eq!(idle, tor.base);
        let dynamic_share = (full - idle) / full;
        assert!(
            dynamic_share < 0.4,
            "ToR dynamic share {dynamic_share:.2} too load-dependent"
        );
        // Clamping.
        assert_eq!(tor.power(500), full);
        assert_eq!(tor.power_at(2.0), full);
        assert_eq!(tor.power_at(-1.0), idle);
    }

    #[test]
    fn estate_sizing_scales_with_nodes() {
        let small = SiteNetwork::sized_for(59);
        let large = SiteNetwork::sized_for(876);
        assert_eq!(small.switches[0].1, 2); // 2 ToRs for 59 nodes
        assert_eq!(large.switches[0].1, 22); // 22 ToRs for 876 nodes
        assert!(large.device_count() > small.device_count());
        // One border router each.
        assert_eq!(small.switches[2].1, 1);
        assert_eq!(large.switches[2].1, 1);
        // Degenerate site still gets a minimal estate.
        assert!(SiteNetwork::sized_for(1).device_count() >= 3);
    }

    #[test]
    fn network_energy_is_small_but_not_negligible() {
        // The paper's QMUL: 118 nodes drew 1,299 kWh/day. Its network
        // estate should be a few percent of that.
        let net = SiteNetwork::sized_for(118);
        let e = net.energy(Period::snapshot_24h(), 0.8);
        let share = e.kilowatt_hours() / 1_299.0;
        assert!(
            (0.005..=0.05).contains(&share),
            "network share {share:.3} out of the expected few-percent band"
        );
    }

    #[test]
    fn power_series_tracks_activity() {
        let net = SiteNetwork::sized_for(100);
        let series = net.power_series(Period::snapshot_24h(), SimDuration::from_hours(1.0), |h| {
            if (8.0..18.0).contains(&h) {
                0.9
            } else {
                0.4
            }
        });
        assert_eq!(series.len(), 24);
        let day_power = series.get(12).unwrap();
        let night_power = series.get(2).unwrap();
        assert!(day_power > night_power);
        // Integrated energy consistent with the constant-activity bound.
        let e = series.integrate(GapPolicy::Zero);
        let hi = net.energy(Period::snapshot_24h(), 0.9);
        let lo = net.energy(Period::snapshot_24h(), 0.4);
        assert!(e > lo && e < hi);
    }

    #[test]
    fn presets_ranked_by_size() {
        let tor = SwitchPowerModel::top_of_rack().power_at(0.8);
        let spine = SwitchPowerModel::spine().power_at(0.8);
        let border = SwitchPowerModel::border_router().power_at(0.8);
        assert!(tor < spine && spine < border);
    }
}
