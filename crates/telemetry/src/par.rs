//! Deterministic chunked parallelism built on crossbeam scoped threads.
//!
//! The collector sweeps thousands of nodes × thousands of samples; the work
//! is embarrassingly parallel but the *output must not depend on thread
//! scheduling*. The helpers here split an index range into contiguous
//! chunks, fan the chunks out over scoped worker threads, and reassemble
//! results in index order — so `parallel == serial` exactly, which the
//! test suite asserts.

use parking_lot::Mutex;

/// Number of worker threads to use: the available parallelism, capped so
/// tiny workloads don't pay spawn overhead for idle threads.
pub fn default_workers(items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    hw.min(items.max(1)).min(32)
}

/// Maps `f` over `0..items` in parallel, returning results in index order.
///
/// `f` must be pure (it runs from multiple threads in unspecified order).
/// With `workers == 1` the loop runs inline on the caller's thread, which
/// is both the degenerate case and the serial baseline for benchmarks.
pub fn parallel_map_indexed<R, F>(items: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(workers > 0, "need at least one worker");
    if items == 0 {
        return Vec::new();
    }
    if workers == 1 || items == 1 {
        return (0..items).map(f).collect();
    }

    let workers = workers.min(items);
    // Contiguous chunks keep per-thread memory access local and make
    // reassembly a simple concatenation.
    let chunk = items.div_ceil(workers);
    let mut slots: Vec<Option<Vec<R>>> = Vec::with_capacity(workers);
    slots.resize_with(workers, || None);
    let slots = Mutex::new(slots);

    crossbeam::scope(|scope| {
        for w in 0..workers {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(items);
            if lo >= hi {
                break;
            }
            let f = &f;
            let slots = &slots;
            scope.spawn(move |_| {
                let mut out = Vec::with_capacity(hi - lo);
                for i in lo..hi {
                    out.push(f(i));
                }
                slots.lock()[w] = Some(out);
            });
        }
    })
    .expect("collector worker panicked");

    let mut slots = slots.into_inner();
    let mut result = Vec::with_capacity(items);
    for slot in slots.iter_mut() {
        if let Some(chunk) = slot.take() {
            result.extend(chunk);
        }
    }
    result
}

/// Runs `f(index, &mut slots[index])` for every slot, fanned out over
/// `workers` scoped threads in contiguous index chunks — the in-place
/// sibling of [`parallel_map_indexed`] for callers that own reusable
/// output storage (the collector's scratch arena). Allocates nothing:
/// the slice is partitioned with `split_at_mut`, so each worker owns a
/// disjoint sub-slice.
///
/// `f` must be pure in everything but its slot (it runs from multiple
/// threads in unspecified order). With `workers == 1` the loop runs
/// inline on the caller's thread.
pub fn parallel_fill_indexed<S, F>(slots: &mut [S], workers: usize, f: F)
where
    S: Send,
    F: Fn(usize, &mut S) + Sync,
{
    assert!(workers > 0, "need at least one worker");
    let items = slots.len();
    if items == 0 {
        return;
    }
    if workers == 1 || items == 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            f(i, slot);
        }
        return;
    }

    let workers = workers.min(items);
    let chunk = items.div_ceil(workers);
    crossbeam::scope(|scope| {
        let f = &f;
        let mut rest = slots;
        let mut base = 0usize;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let start = base;
            base += take;
            scope.spawn(move |_| {
                for (offset, slot) in head.iter_mut().enumerate() {
                    f(start + offset, slot);
                }
            });
        }
    })
    .expect("collector worker panicked");
}

/// Parallel map-reduce over `0..items`: maps with `f`, folds chunk results
/// with `reduce` in **index order** (deterministic even for non-commutative
/// reductions).
pub fn parallel_map_reduce<R, F, G>(items: usize, workers: usize, f: F, init: R, reduce: G) -> R
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    G: Fn(R, R) -> R,
{
    let mapped = parallel_map_indexed(items, workers, f);
    mapped.into_iter().fold(init, reduce)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn matches_serial_for_any_worker_count() {
        let serial: Vec<u64> = (0..1_000)
            .map(|i| (i as u64).wrapping_mul(31) ^ 7)
            .collect();
        for workers in [1, 2, 3, 7, 16] {
            let par = parallel_map_indexed(1_000, workers, |i| (i as u64).wrapping_mul(31) ^ 7);
            assert_eq!(par, serial, "workers = {workers}");
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u8> = parallel_map_indexed(0, 4, |_| 0u8);
        assert!(empty.is_empty());
        let one = parallel_map_indexed(1, 4, |i| i + 10);
        assert_eq!(one, vec![10]);
    }

    #[test]
    fn uneven_chunks_cover_all_items() {
        // 10 items across 4 workers: chunks of 3,3,3,1.
        let r = parallel_map_indexed(10, 4, |i| i);
        assert_eq!(r, (0..10).collect::<Vec<_>>());
        // More workers than items.
        let r = parallel_map_indexed(3, 16, |i| i * 2);
        assert_eq!(r, vec![0, 2, 4]);
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        let seen = AtomicUsize::new(0);
        let main = std::thread::current().id();
        parallel_map_indexed(64, 4, |_| {
            if std::thread::current().id() != main {
                seen.fetch_add(1, Ordering::Relaxed);
            }
            std::thread::sleep(std::time::Duration::from_micros(100));
        });
        assert!(
            seen.load(Ordering::Relaxed) > 0,
            "no work observed off the main thread"
        );
    }

    #[test]
    fn fill_matches_map_for_any_worker_count() {
        let expect: Vec<u64> = (0..257).map(|i| (i as u64).wrapping_mul(17) ^ 3).collect();
        for workers in [1, 2, 3, 7, 16, 64] {
            let mut slots = vec![0u64; 257];
            parallel_fill_indexed(&mut slots, workers, |i, s| {
                *s = (i as u64).wrapping_mul(17) ^ 3;
            });
            assert_eq!(slots, expect, "workers = {workers}");
        }
        // Empty and single-slot cases.
        let mut empty: [u64; 0] = [];
        parallel_fill_indexed(&mut empty, 4, |_, _| unreachable!());
        let mut one = [0u64];
        parallel_fill_indexed(&mut one, 4, |i, s| *s = i as u64 + 9);
        assert_eq!(one, [9]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn fill_rejects_zero_workers() {
        parallel_fill_indexed(&mut [0u8; 4], 0, |_, _| {});
    }

    #[test]
    fn map_reduce_is_order_preserving() {
        // String concatenation is non-commutative: order must hold.
        let s = parallel_map_reduce(
            8,
            3,
            |i| i.to_string(),
            String::new(),
            |mut acc, x| {
                acc.push_str(&x);
                acc
            },
        );
        assert_eq!(s, "01234567");
    }

    #[test]
    fn map_reduce_sums() {
        let total = parallel_map_reduce(1_001, 8, |i| i as u64, 0u64, |a, b| a + b);
        assert_eq!(total, 1_000 * 1_001 / 2);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = parallel_map_indexed(10, 0, |i| i);
    }

    #[test]
    fn default_workers_bounds() {
        assert!(default_workers(1_000) >= 1);
        assert!(default_workers(1_000) <= 32);
        assert_eq!(default_workers(0), 1);
    }
}
