//! Deterministic chunked parallelism: scoped threads and a persistent
//! worker pool.
//!
//! The collector sweeps thousands of nodes × thousands of samples; the work
//! is embarrassingly parallel but the *output must not depend on thread
//! scheduling*. The helpers here split an index range into contiguous
//! chunks, fan the chunks out over worker threads, and reassemble
//! results in index order — so `parallel == serial` exactly, which the
//! test suite asserts.
//!
//! Two execution backends exist behind [`FillBackend`]:
//!
//! * [`FillBackend::Spawn`] — crossbeam scoped threads spawned per call,
//!   the original implementation. Zero standing resources, but each call
//!   pays thread creation, which is both latency and the one allocation
//!   left on the collector's warm path.
//! * [`FillBackend::Pool`] (default) — a process-wide pool of persistent
//!   workers, spawned lazily on the first parallel fill and reused by
//!   every later call. Dispatch publishes a stack-allocated job in a
//!   registry, sends wake tokens over a `crossbeam::channel`, and lets
//!   workers *claim* slot indices from a shared atomic cursor; the
//!   calling thread participates too and never blocks on a syscall for
//!   completion. After the pool is up, a dispatch performs no heap
//!   allocation and no thread spawn.
//!
//! Which slots land on which worker is scheduling-dependent in the pool —
//! that is fine precisely because the output contract of a chunked fill
//! is per-slot: every slot is written by exactly one claimant, so
//! pool ≡ spawn ≡ serial bit-for-bit (a property test pins it through
//! the whole collector).

use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Number of worker threads to use: the available parallelism, capped so
/// tiny workloads don't pay spawn overhead for idle threads.
pub fn default_workers(items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    hw.min(items.max(1)).min(32)
}

/// Maps `f` over `0..items` in parallel, returning results in index order.
///
/// `f` must be pure (it runs from multiple threads in unspecified order).
/// With `workers <= 1` the loop runs inline on the caller's thread, which
/// is both the degenerate case and the serial baseline for benchmarks.
/// `workers == 0` is clamped to 1 rather than asserted: a caller-supplied
/// zero (a miscomputed `cores - reserved`, a config file) must not panic
/// deep inside the fill path of an otherwise valid collect.
pub fn parallel_map_indexed<R, F>(items: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.max(1);
    if items == 0 {
        return Vec::new();
    }
    if workers == 1 || items == 1 {
        return (0..items).map(f).collect();
    }

    let workers = workers.min(items);
    // Contiguous chunks keep per-thread memory access local and make
    // reassembly a simple concatenation.
    let chunk = items.div_ceil(workers);
    let mut slots: Vec<Option<Vec<R>>> = Vec::with_capacity(workers);
    slots.resize_with(workers, || None);
    let slots = Mutex::new(slots);

    crossbeam::scope(|scope| {
        for w in 0..workers {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(items);
            if lo >= hi {
                break;
            }
            let f = &f;
            let slots = &slots;
            scope.spawn(move |_| {
                let mut out = Vec::with_capacity(hi - lo);
                for i in lo..hi {
                    out.push(f(i));
                }
                slots.lock()[w] = Some(out);
            });
        }
    })
    .expect("collector worker panicked");

    let mut slots = slots.into_inner();
    let mut result = Vec::with_capacity(items);
    for slot in slots.iter_mut() {
        if let Some(chunk) = slot.take() {
            result.extend(chunk);
        }
    }
    result
}

/// Runs `f(index, &mut slots[index])` for every slot, fanned out over
/// `workers` scoped threads in contiguous index chunks — the in-place
/// sibling of [`parallel_map_indexed`] for callers that own reusable
/// output storage (the collector's scratch arena). Allocates nothing:
/// the slice is partitioned with `split_at_mut`, so each worker owns a
/// disjoint sub-slice.
///
/// `f` must be pure in everything but its slot (it runs from multiple
/// threads in unspecified order). With `workers <= 1` the loop runs
/// inline on the caller's thread (`workers == 0` is clamped to 1, as in
/// [`parallel_map_indexed`]).
pub fn parallel_fill_indexed<S, F>(slots: &mut [S], workers: usize, f: F)
where
    S: Send,
    F: Fn(usize, &mut S) + Sync,
{
    let workers = workers.max(1);
    let items = slots.len();
    if items == 0 {
        return;
    }
    if workers == 1 || items == 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            f(i, slot);
        }
        return;
    }

    let workers = workers.min(items);
    let chunk = items.div_ceil(workers);
    crossbeam::scope(|scope| {
        let f = &f;
        let mut rest = slots;
        let mut base = 0usize;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let start = base;
            base += take;
            scope.spawn(move |_| {
                for (offset, slot) in head.iter_mut().enumerate() {
                    f(start + offset, slot);
                }
            });
        }
    })
    .expect("collector worker panicked");
}

/// Which execution strategy a chunked fill uses. `Pool` is the default
/// everywhere; `Spawn` remains so benches and property tests can compare
/// the two (they are bit-identical by construction).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum FillBackend {
    /// Scoped worker threads spawned (and joined) per call.
    Spawn,
    /// The lazily started, process-wide persistent worker pool.
    #[default]
    Pool,
}

impl FillBackend {
    /// Runs `f(index, &mut slots[index])` for every slot on this
    /// backend — same contract as [`parallel_fill_indexed`].
    pub fn fill_indexed<S, F>(self, slots: &mut [S], workers: usize, f: F)
    where
        S: Send,
        F: Fn(usize, &mut S) + Sync,
    {
        match self {
            FillBackend::Spawn => parallel_fill_indexed(slots, workers, f),
            FillBackend::Pool => pool_fill_indexed(slots, workers, f),
        }
    }
}

/// One in-flight pool dispatch, allocated on the **caller's stack** and
/// published to workers by address. Soundness rests on three facts the
/// code below maintains:
///
/// 1. every slot index is claimed exactly once (`next.fetch_add`), so a
///    claimant holds the only `&mut` into that slot;
/// 2. a participant's final touch of the job is its `participants`
///    release-decrement — after that it never dereferences the pointer
///    again;
/// 3. the caller **unregisters the job before its completion wait**:
///    picks and their `participants` increments happen only under the
///    registry lock, so once the caller's `retain` critical section has
///    run, no new worker can reach the job and every prior pick's
///    increment is visible to the caller (same-lock happens-before).
///    Spinning until `finished == chunks` and `participants == 0`
///    therefore outlasts the last possible access, and only then does
///    the stack frame die. (Unregistering *after* the wait would race:
///    a worker could be picked mid-wait, after the caller last sampled
///    `participants`.)
struct PoolJob {
    /// Type-erased trampoline: `run(ctx, i)` fills slot `i`.
    run: unsafe fn(*const (), usize),
    /// Points at the caller's stack-held context (slot base + closure).
    ctx: *const (),
    /// Total slots to fill.
    chunks: usize,
    /// Claim cursor: `fetch_add` hands out slot indices.
    next: AtomicUsize,
    /// Slots fully processed (bulk-added when a participant exits).
    finished: AtomicUsize,
    /// Pool workers currently inside [`run_chunks`] for this job.
    participants: AtomicUsize,
    /// Most pool workers allowed in at once (`workers − 1`: the caller
    /// is a participant too and is not counted here). Enforced at pick
    /// time so a small-`workers` dispatch keeps its CPU bound even when
    /// the rest of the pool sits idle — the cap the Spawn backend gets
    /// for free.
    helper_cap: usize,
    /// A chunk panicked; the payload below carries the first one.
    panicked: AtomicBool,
    /// First panic payload, re-thrown on the caller's thread.
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

/// A `*const PoolJob` that may cross threads (see [`PoolJob`] soundness
/// notes — the registry and claim protocol make the accesses race-free).
#[derive(Copy, Clone, PartialEq, Eq)]
struct JobPtr(*const PoolJob);
// SAFETY: the pointee outlives every access (the publishing caller spins
// until all participants leave before unregistering and returning), and
// all shared mutation goes through atomics or the payload mutex.
unsafe impl Send for JobPtr {}
unsafe impl Sync for JobPtr {}

/// The process-wide persistent worker pool.
struct Pool {
    /// Wake tokens: one `()` nudges one idle worker to scan the registry.
    wake: Sender<()>,
    /// Jobs currently accepting claimants.
    registry: Arc<Mutex<Vec<JobPtr>>>,
    /// Worker threads spawned (≥ 1, capped at 32).
    threads: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

impl Pool {
    /// The pool, spawning its workers on first use. Sized to the host's
    /// available parallelism — worker *counts* requested per call above
    /// that add nothing on this host and are quietly capped.
    fn global() -> &'static Pool {
        POOL.get_or_init(|| {
            let (wake, wake_rx) = channel::unbounded::<()>();
            let registry: Arc<Mutex<Vec<JobPtr>>> = Arc::default();
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(32);
            for i in 0..threads {
                let rx = wake_rx.clone();
                let reg = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("iriscast-pool-{i}"))
                    .spawn(move || worker_loop(rx, reg))
                    .expect("spawn pool worker");
            }
            Pool {
                wake,
                registry,
                threads,
            }
        })
    }
}

/// Number of persistent pool worker threads, spawning the pool if it is
/// not up yet. Introspection hook for benches, tests and capacity
/// planning; the pool is sized to the host's available parallelism
/// (capped at 32).
pub fn pool_size() -> usize {
    Pool::global().threads
}

/// A pool worker: sleep on the wake channel, then serve registry jobs
/// until none have unclaimed slots left.
fn worker_loop(wake: Receiver<()>, registry: Arc<Mutex<Vec<JobPtr>>>) {
    while wake.recv().is_ok() {
        loop {
            // Pick any job with unclaimed slots and helper headroom;
            // registering as a participant must happen under the
            // registry lock so the publishing caller cannot observe
            // `participants == 0` between our pick and our first claim,
            // and so the `helper_cap` check cannot race another pick
            // (decrements happen outside the lock, so a stale high
            // count can only make us decline — never oversubscribe).
            let picked = {
                let jobs = registry.lock();
                jobs.iter()
                    .find(|JobPtr(p)| {
                        // SAFETY: pointers in the registry are live (the
                        // caller unregisters before its job dies).
                        let job = unsafe { &**p };
                        job.next.load(Ordering::Relaxed) < job.chunks
                            && job.participants.load(Ordering::Relaxed) < job.helper_cap
                    })
                    .copied()
                    .inspect(|JobPtr(p)| {
                        let job = unsafe { &**p };
                        job.participants.fetch_add(1, Ordering::Relaxed);
                    })
            };
            let Some(JobPtr(p)) = picked else { break };
            // SAFETY: participant registration above keeps the job alive
            // until our matching `participants` decrement.
            let job = unsafe { &*p };
            run_chunks(job);
            job.participants.fetch_sub(1, Ordering::Release);
        }
    }
}

/// Claims and runs slots until the job's cursor is exhausted, then
/// bulk-reports how many this participant completed. Panics are caught
/// per slot so one poisoned chunk can neither kill a pool worker nor
/// leave the job incomplete; the first payload is re-thrown by the
/// caller.
fn run_chunks(job: &PoolJob) {
    let mut done = 0usize;
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.chunks {
            break;
        }
        // SAFETY: index `i` was claimed exactly once, so the trampoline
        // holds the only mutable access to slot `i`.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (job.run)(job.ctx, i) }));
        if let Err(payload) = result {
            if !job.panicked.swap(true, Ordering::Relaxed) {
                *job.panic_payload.lock() = Some(payload);
            }
        }
        done += 1;
    }
    job.finished.fetch_add(done, Ordering::Release);
}

/// [`parallel_fill_indexed`] on the persistent pool: same contract, same
/// bit-identical output, no thread spawn and no heap allocation per call
/// once the pool is up. With `workers <= 1` (zero is clamped to 1, as in
/// [`parallel_map_indexed`]) or a single slot the loop runs inline on the
/// caller's thread, exactly like the spawn backend.
pub fn pool_fill_indexed<S, F>(slots: &mut [S], workers: usize, f: F)
where
    S: Send,
    F: Fn(usize, &mut S) + Sync,
{
    let workers = workers.max(1);
    let items = slots.len();
    if items == 0 {
        return;
    }
    if workers == 1 || items == 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            f(i, slot);
        }
        return;
    }

    let pool = Pool::global();

    /// Caller-stack context the type-erased trampoline reads back.
    struct Ctx<S, F> {
        slots: *mut S,
        f: *const F,
    }
    unsafe fn run_one<S, F: Fn(usize, &mut S)>(ctx: *const (), i: usize) {
        // SAFETY: `ctx` is the caller's `Ctx<S, F>`, alive for the whole
        // dispatch; slot `i` is exclusively ours (claimed once).
        let c = unsafe { &*(ctx as *const Ctx<S, F>) };
        (unsafe { &*c.f })(i, unsafe { &mut *c.slots.add(i) });
    }

    let ctx = Ctx {
        slots: slots.as_mut_ptr(),
        f: &raw const f,
    };
    let helper_cap = (workers - 1).min(pool.threads);
    let job = PoolJob {
        run: run_one::<S, F>,
        ctx: (&raw const ctx).cast(),
        chunks: items,
        next: AtomicUsize::new(0),
        finished: AtomicUsize::new(0),
        participants: AtomicUsize::new(0),
        helper_cap,
        panicked: AtomicBool::new(false),
        panic_payload: Mutex::new(None),
    };

    // Publish, nudge up to `helper_cap` helpers (more than the pool has
    // threads is pointless), and join in ourselves. Idle workers beyond
    // the cap cannot pile on: the pick condition enforces it.
    pool.registry.lock().push(JobPtr(&raw const job));
    for _ in 0..helper_cap {
        let _ = pool.wake.send(());
    }
    run_chunks(&job);

    // Retract the publication FIRST: all slots are claimed by now (our
    // own claim loop only exits on an exhausted cursor), and removal
    // goes through the same lock every pick goes through — after this
    // critical section no new worker can reach the job, and every
    // already-picked worker's `participants` increment is visible to
    // the loads below. Only then is waiting on the counters race-free
    // (waiting before unregistering could sample `participants == 0`,
    // have a worker pick the job, and free the frame under it).
    pool.registry
        .lock()
        .retain(|&p| p != JobPtr(&raw const job));
    // Escalating wait: spin briefly (the common case — helpers are just
    // draining their last chunk), yield for a while, then fall back to
    // bounded sleeps so a stalled helper (blocking fill closure, page
    // fault, oversubscribed host) cannot peg this core indefinitely.
    // `park_timeout` needs no unpark partner: the loop re-checks on
    // every wakeup, and nobody else may touch the job anyway — a
    // completion signal *from* a participant would be an access after
    // its supposedly-final decrement.
    let mut spins = 0u32;
    while job.finished.load(Ordering::Acquire) < job.chunks
        || job.participants.load(Ordering::Acquire) != 0
    {
        spins = spins.saturating_add(1);
        if spins < 128 {
            std::hint::spin_loop();
        } else if spins < 1_128 {
            std::thread::yield_now();
        } else {
            std::thread::park_timeout(std::time::Duration::from_micros(100));
        }
    }

    if job.panicked.load(Ordering::Relaxed) {
        let payload = job.panic_payload.lock().take();
        resume_unwind(payload.unwrap_or_else(|| Box::new("pool chunk panicked")));
    }
}

/// Parallel map-reduce over `0..items`: maps with `f`, folds chunk results
/// with `reduce` in **index order** (deterministic even for non-commutative
/// reductions).
pub fn parallel_map_reduce<R, F, G>(items: usize, workers: usize, f: F, init: R, reduce: G) -> R
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    G: Fn(R, R) -> R,
{
    let mapped = parallel_map_indexed(items, workers, f);
    mapped.into_iter().fold(init, reduce)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn matches_serial_for_any_worker_count() {
        let serial: Vec<u64> = (0..1_000)
            .map(|i| (i as u64).wrapping_mul(31) ^ 7)
            .collect();
        for workers in [1, 2, 3, 7, 16] {
            let par = parallel_map_indexed(1_000, workers, |i| (i as u64).wrapping_mul(31) ^ 7);
            assert_eq!(par, serial, "workers = {workers}");
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u8> = parallel_map_indexed(0, 4, |_| 0u8);
        assert!(empty.is_empty());
        let one = parallel_map_indexed(1, 4, |i| i + 10);
        assert_eq!(one, vec![10]);
    }

    #[test]
    fn uneven_chunks_cover_all_items() {
        // 10 items across 4 workers: chunks of 3,3,3,1.
        let r = parallel_map_indexed(10, 4, |i| i);
        assert_eq!(r, (0..10).collect::<Vec<_>>());
        // More workers than items.
        let r = parallel_map_indexed(3, 16, |i| i * 2);
        assert_eq!(r, vec![0, 2, 4]);
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        let seen = AtomicUsize::new(0);
        let main = std::thread::current().id();
        parallel_map_indexed(64, 4, |_| {
            if std::thread::current().id() != main {
                seen.fetch_add(1, Ordering::Relaxed);
            }
            std::thread::sleep(std::time::Duration::from_micros(100));
        });
        assert!(
            seen.load(Ordering::Relaxed) > 0,
            "no work observed off the main thread"
        );
    }

    #[test]
    fn fill_matches_map_for_any_worker_count() {
        let expect: Vec<u64> = (0..257).map(|i| (i as u64).wrapping_mul(17) ^ 3).collect();
        for workers in [1, 2, 3, 7, 16, 64] {
            let mut slots = vec![0u64; 257];
            parallel_fill_indexed(&mut slots, workers, |i, s| {
                *s = (i as u64).wrapping_mul(17) ^ 3;
            });
            assert_eq!(slots, expect, "workers = {workers}");
        }
        // Empty and single-slot cases.
        let mut empty: [u64; 0] = [];
        parallel_fill_indexed(&mut empty, 4, |_, _| unreachable!());
        let mut one = [0u64];
        parallel_fill_indexed(&mut one, 4, |i, s| *s = i as u64 + 9);
        assert_eq!(one, [9]);
    }

    #[test]
    fn fill_clamps_zero_workers_to_serial() {
        // A caller-supplied 0 used to trip an assert deep in the fill
        // path; it now runs the serial (1-worker) loop.
        let mut slots = [0usize; 4];
        parallel_fill_indexed(&mut slots, 0, |i, s| *s = i + 1);
        assert_eq!(slots, [1, 2, 3, 4]);
        let mut slots = [0usize; 4];
        pool_fill_indexed(&mut slots, 0, |i, s| *s = i + 1);
        assert_eq!(slots, [1, 2, 3, 4]);
    }

    #[test]
    fn map_reduce_is_order_preserving() {
        // String concatenation is non-commutative: order must hold.
        let s = parallel_map_reduce(
            8,
            3,
            |i| i.to_string(),
            String::new(),
            |mut acc, x| {
                acc.push_str(&x);
                acc
            },
        );
        assert_eq!(s, "01234567");
    }

    #[test]
    fn map_reduce_sums() {
        let total = parallel_map_reduce(1_001, 8, |i| i as u64, 0u64, |a, b| a + b);
        assert_eq!(total, 1_000 * 1_001 / 2);
    }

    #[test]
    fn zero_workers_clamped_to_serial() {
        let r = parallel_map_indexed(10, 0, |i| i);
        assert_eq!(r, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn default_workers_bounds() {
        // Both worker-count sources are ≥ 1 by construction, so no
        // caller assembling `workers` from them can hit the zero clamp.
        assert!(default_workers(1_000) >= 1);
        assert!(default_workers(1_000) <= 32);
        assert_eq!(default_workers(0), 1);
        assert!(pool_size() >= 1);
    }

    #[test]
    fn pool_fill_matches_spawn_fill_for_any_worker_count() {
        let expect: Vec<u64> = (0..257).map(|i| (i as u64).wrapping_mul(17) ^ 3).collect();
        for workers in [1, 2, 3, 7, 16, 64] {
            let mut spawned = vec![0u64; 257];
            parallel_fill_indexed(&mut spawned, workers, |i, s| {
                *s = (i as u64).wrapping_mul(17) ^ 3;
            });
            let mut pooled = vec![0u64; 257];
            pool_fill_indexed(&mut pooled, workers, |i, s| {
                *s = (i as u64).wrapping_mul(17) ^ 3;
            });
            assert_eq!(pooled, expect, "pool vs serial, workers = {workers}");
            assert_eq!(pooled, spawned, "pool vs spawn, workers = {workers}");
        }
        // Degenerate shapes.
        let mut empty: [u64; 0] = [];
        pool_fill_indexed(&mut empty, 4, |_, _| unreachable!());
        let mut one = [0u64];
        pool_fill_indexed(&mut one, 4, |i, s| *s = i as u64 + 9);
        assert_eq!(one, [9]);
    }

    #[test]
    fn pool_is_reusable_and_persistent_across_dispatches() {
        assert!(pool_size() >= 1);
        // Many dispatches against the same global pool; every one must
        // complete fully (a leaked claim or lost wake token would hang
        // or miss slots).
        for round in 0..50usize {
            let mut slots = vec![0usize; 64 + round];
            pool_fill_indexed(&mut slots, 8, |i, s| *s = i + round);
            for (i, s) in slots.iter().enumerate() {
                assert_eq!(*s, i + round, "round {round}");
            }
        }
    }

    #[test]
    fn pool_serves_concurrent_callers() {
        // Simultaneous dispatches from several threads share the worker
        // pool without mixing slots across jobs.
        std::thread::scope(|scope| {
            for caller in 0..4usize {
                scope.spawn(move || {
                    for _ in 0..20 {
                        let mut slots = vec![0usize; 97];
                        pool_fill_indexed(&mut slots, 4, |i, s| *s = i * 3 + caller);
                        for (i, s) in slots.iter().enumerate() {
                            assert_eq!(*s, i * 3 + caller, "caller {caller}");
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn pool_honors_the_requested_worker_cap() {
        // `workers` bounds CPU use on the pool backend exactly as it
        // does on the spawn backend: at most `workers − 1` pool helpers
        // may join the caller, however idle the rest of the pool is.
        use std::collections::HashSet;
        use std::sync::Mutex as StdMutex;
        for workers in [2usize, 3] {
            let seen = StdMutex::new(HashSet::new());
            let mut slots = vec![0usize; 48];
            pool_fill_indexed(&mut slots, workers, |i, s| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_micros(200));
                *s = i;
            });
            assert_eq!(slots, (0..48).collect::<Vec<_>>());
            let distinct = seen.lock().unwrap().len();
            assert!(
                distinct <= workers,
                "{distinct} threads ran chunks with workers = {workers}"
            );
        }
    }

    #[test]
    fn pool_propagates_chunk_panics_without_poisoning_workers() {
        let result = std::panic::catch_unwind(|| {
            let mut slots = vec![0u8; 32];
            pool_fill_indexed(&mut slots, 4, |i, _| {
                if i == 17 {
                    panic!("chunk 17 exploded");
                }
            });
        });
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("chunk 17"), "payload: {msg}");
        // The pool must still work afterwards.
        let mut slots = vec![0usize; 64];
        pool_fill_indexed(&mut slots, 8, |i, s| *s = i);
        assert_eq!(slots, (0..64).collect::<Vec<_>>());
    }
}
