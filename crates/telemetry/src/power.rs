//! Node power models: utilisation → wall power, with instrument coverage.

use iriscast_units::Power;
use serde::{Deserialize, Serialize};

/// Shape of the utilisation→power curve between idle and max.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PowerCurve {
    /// `P(u) = idle + (max−idle)·u` — the common first-order model.
    Linear,
    /// `P(u) = idle + (max−idle)·u^γ`. `γ < 1` models servers that reach
    /// high power at moderate load (memory-bound codes); `γ > 1` models
    /// turbo-limited parts.
    Exponent(f64),
}

impl PowerCurve {
    /// Evaluates the curve shape at utilisation `u` (caller clamps).
    /// Public so the collector's SoA loop can run on flat per-node
    /// `(idle, span, curve)` columns instead of model structs.
    #[inline]
    pub fn apply(self, u: f64) -> f64 {
        match self {
            PowerCurve::Linear => u,
            PowerCurve::Exponent(g) => u.powf(g),
        }
    }
}

/// Utilisation→power model for one node model, including the share of wall
/// power visible to each instrument class.
///
/// The *wall* power is what the PDU sees. On-node instruments see less:
///
/// * IPMI reads the PSU's reported input power, which typically misses
///   PDU-side distribution and reports a calibrated-low figure
///   (`ipmi_share`, ≈ 0.985 — the paper's QMUL −1.5%);
/// * Turbostat reads RAPL package+DRAM counters only, missing fans, disks,
///   NICs, VRM losses and the PSU itself (`rapl_share`, ≈ 0.93 of wall;
///   combined with the IPMI gain that reproduces QMUL's −5%).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodePowerModel {
    idle: Power,
    max: Power,
    curve: PowerCurve,
    /// Fraction of wall power the node's IPMI/BMC reports.
    pub ipmi_share: f64,
    /// Fraction of wall power covered by RAPL (CPU package + DRAM).
    pub rapl_share: f64,
}

impl NodePowerModel {
    /// Linear model with default instrument coverage (IPMI 98.5%,
    /// RAPL 93.5% of wall power).
    pub fn linear(idle: Power, max: Power) -> Self {
        NodePowerModel::new(idle, max, PowerCurve::Linear)
    }

    /// Model with an explicit curve and default instrument coverage.
    ///
    /// # Panics
    /// If `max < idle`.
    pub fn new(idle: Power, max: Power, curve: PowerCurve) -> Self {
        assert!(
            max >= idle,
            "max power {max} must not be below idle power {idle}"
        );
        NodePowerModel {
            idle,
            max,
            curve,
            ipmi_share: 0.985,
            rapl_share: 0.935,
        }
    }

    /// Overrides the instrument coverage shares.
    ///
    /// # Panics
    /// If either share is outside `(0, 1]` or RAPL covers more than IPMI.
    pub fn with_coverage(mut self, ipmi_share: f64, rapl_share: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&ipmi_share) && ipmi_share > 0.0,
            "ipmi share must lie in (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&rapl_share) && rapl_share > 0.0,
            "rapl share must lie in (0, 1]"
        );
        assert!(
            rapl_share <= ipmi_share,
            "RAPL (package+DRAM) cannot see more than the PSU input"
        );
        self.ipmi_share = ipmi_share;
        self.rapl_share = rapl_share;
        self
    }

    /// Wall power at idle.
    pub fn idle(&self) -> Power {
        self.idle
    }

    /// Wall power at full load.
    pub fn max(&self) -> Power {
        self.max
    }

    /// The utilisation→power curve shape.
    pub fn curve(&self) -> PowerCurve {
        self.curve
    }

    /// True wall (AC input) power at utilisation `u` (clamped to `[0,1]`).
    #[inline]
    pub fn wall_power(&self, u: f64) -> Power {
        let u = u.clamp(0.0, 1.0);
        self.idle + (self.max - self.idle) * self.curve.apply(u)
    }

    /// Power the node's IPMI sensor would report for true wall power `p`.
    pub fn ipmi_visible(&self, wall: Power) -> Power {
        wall * self.ipmi_share
    }

    /// Power RAPL counters (Turbostat) would report for true wall power.
    pub fn rapl_visible(&self, wall: Power) -> Power {
        wall * self.rapl_share
    }

    /// Utilisation needed for a target *mean* wall power under the linear
    /// curve — the calibration inverse used to match published site
    /// energies. Returns a value clamped to `[0, 1]`.
    pub fn utilisation_for_power(&self, target: Power) -> f64 {
        let dynamic = self.max - self.idle;
        if dynamic.watts() <= 0.0 {
            return 0.0;
        }
        ((target - self.idle) / dynamic).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> NodePowerModel {
        NodePowerModel::linear(Power::from_watts(140.0), Power::from_watts(620.0))
    }

    #[test]
    fn linear_interpolation() {
        let m = model();
        assert_eq!(m.wall_power(0.0), Power::from_watts(140.0));
        assert_eq!(m.wall_power(1.0), Power::from_watts(620.0));
        assert_eq!(m.wall_power(0.5), Power::from_watts(380.0));
        assert_eq!(m.wall_power(-1.0), m.idle());
        assert_eq!(m.wall_power(2.0), m.max());
    }

    #[test]
    fn exponent_curves() {
        let sub = NodePowerModel::new(
            Power::from_watts(100.0),
            Power::from_watts(500.0),
            PowerCurve::Exponent(0.5),
        );
        let sup = NodePowerModel::new(
            Power::from_watts(100.0),
            Power::from_watts(500.0),
            PowerCurve::Exponent(2.0),
        );
        let lin = NodePowerModel::linear(Power::from_watts(100.0), Power::from_watts(500.0));
        let u = 0.25;
        assert!(sub.wall_power(u) > lin.wall_power(u));
        assert!(sup.wall_power(u) < lin.wall_power(u));
        // All curves agree at the endpoints.
        for m in [&sub, &sup, &lin] {
            assert_eq!(m.wall_power(0.0), Power::from_watts(100.0));
            assert_eq!(m.wall_power(1.0), Power::from_watts(500.0));
        }
    }

    #[test]
    fn instrument_coverage_ordering() {
        let m = model();
        let wall = m.wall_power(0.7);
        let ipmi = m.ipmi_visible(wall);
        let rapl = m.rapl_visible(wall);
        assert!(rapl < ipmi && ipmi < wall);
        // QMUL's published offsets: turbostat/ipmi ≈ 0.949.
        let ratio = rapl / ipmi;
        assert!((ratio - 0.9492).abs() < 0.01, "got {ratio}");
    }

    #[test]
    fn calibration_inverse_round_trips() {
        let m = model();
        for target_w in [140.0, 300.0, 458.7, 620.0] {
            let u = m.utilisation_for_power(Power::from_watts(target_w));
            let back = m.wall_power(u);
            assert!(
                (back.watts() - target_w).abs() < 1e-9,
                "target {target_w} → u {u} → {back}"
            );
        }
        // Out-of-envelope targets clamp.
        assert_eq!(m.utilisation_for_power(Power::from_watts(50.0)), 0.0);
        assert_eq!(m.utilisation_for_power(Power::from_watts(1_000.0)), 1.0);
    }

    #[test]
    fn degenerate_envelope() {
        let flat = NodePowerModel::linear(Power::from_watts(200.0), Power::from_watts(200.0));
        assert_eq!(flat.wall_power(0.5), Power::from_watts(200.0));
        assert_eq!(flat.utilisation_for_power(Power::from_watts(500.0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "must not be below idle")]
    fn rejects_inverted_envelope() {
        let _ = NodePowerModel::linear(Power::from_watts(300.0), Power::from_watts(100.0));
    }

    #[test]
    #[should_panic(expected = "cannot see more")]
    fn rejects_rapl_above_ipmi() {
        let _ = model().with_coverage(0.9, 0.95);
    }

    #[test]
    fn coverage_override() {
        // Durham-style: IPMI only captures ~78% of wall energy.
        let m = model().with_coverage(0.78, 0.70);
        let wall = Power::from_watts(400.0);
        assert!((m.ipmi_visible(wall).watts() - 312.0).abs() < 1e-9);
    }
}
