//! Data quality: cross-method adjustment and completeness reporting.
//!
//! The paper notes that "care is needed in collecting this data and
//! potentially adjusting measurements to get an accurate overall
//! measurement for a facility (i.e. adjusting in-node energy/power data to
//! reflect the overheads that are not being collected)". This module
//! implements that adjustment: where a site has both an upstream method
//! (PDU/Facility) and a downstream one (IPMI/Turbostat), the ratio between
//! them calibrates a correction factor that can be applied to sites where
//! only the downstream method exists.

use crate::aggregate::SiteEnergyReport;
use crate::meter::MeterKind;
use iriscast_units::Energy;
use serde::{Deserialize, Serialize};

/// A calibrated upscaling factor from one method to another.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MethodAdjustment {
    /// Method being corrected (e.g. IPMI).
    pub from: MeterKind,
    /// Reference method (e.g. PDU).
    pub to: MeterKind,
    /// Multiplicative factor `to/from`, energy-weighted across calibration
    /// sites.
    pub factor: f64,
    /// Sites that contributed to the calibration.
    pub calibrated_on: Vec<String>,
}

impl MethodAdjustment {
    /// Fits the `from → to` factor over every row that has both methods,
    /// weighting by the reference energy (bigger sites dominate, matching
    /// how a facility operator would calibrate). `None` when no row has
    /// both.
    pub fn fit(rows: &[SiteEnergyReport], from: MeterKind, to: MeterKind) -> Option<Self> {
        let mut num = 0.0; // Σ reference energy
        let mut den = 0.0; // Σ downstream energy
        let mut sites = Vec::new();
        for row in rows {
            if let (Some(f), Some(t)) = (row.energies.get(from), row.energies.get(to)) {
                if f.joules() > 0.0 {
                    num += t.kilowatt_hours();
                    den += f.kilowatt_hours();
                    sites.push(row.site.clone());
                }
            }
        }
        if den <= 0.0 {
            return None;
        }
        Some(MethodAdjustment {
            from,
            to,
            factor: num / den,
            calibrated_on: sites,
        })
    }

    /// Applies the factor to an energy measured by `self.from`.
    pub fn apply(&self, e: Energy) -> Energy {
        e * self.factor
    }
}

/// Completeness and consistency summary of a Table 2-style report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QualityReport {
    /// `(site, missing methods)` for every site lacking at least one
    /// method.
    pub missing: Vec<(String, Vec<MeterKind>)>,
    /// Fraction of site×method cells populated.
    pub completeness: f64,
    /// Worst relative spread between any two methods at one site
    /// (`(max−min)/max`), with the offending site.
    pub worst_spread: Option<(String, f64)>,
}

/// Builds a [`QualityReport`] for a set of rows.
pub fn assess(rows: &[SiteEnergyReport]) -> QualityReport {
    let mut missing = Vec::new();
    let mut populated = 0usize;
    let mut worst: Option<(String, f64)> = None;
    for row in rows {
        let mut absent = Vec::new();
        let mut present = Vec::new();
        for kind in MeterKind::ALL {
            match row.energies.get(kind) {
                Some(e) => {
                    populated += 1;
                    present.push(e.kilowatt_hours());
                }
                None => absent.push(kind),
            }
        }
        if !absent.is_empty() {
            missing.push((row.site.clone(), absent));
        }
        if present.len() >= 2 {
            let max = present.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let min = present.iter().cloned().fold(f64::INFINITY, f64::min);
            if max > 0.0 {
                let spread = (max - min) / max;
                if worst.as_ref().is_none_or(|(_, w)| spread > *w) {
                    worst = Some((row.site.clone(), spread));
                }
            }
        }
    }
    QualityReport {
        missing,
        completeness: populated as f64 / (rows.len() * MeterKind::ALL.len()) as f64,
        worst_spread: worst,
    }
}

/// An "adjusted" federation total: every site's best estimate, with
/// IPMI-only sites corrected by the fitted IPMI→PDU factor when available.
///
/// This is the paper's suggested refinement of the raw Table 2 total.
pub fn adjusted_total(rows: &[SiteEnergyReport]) -> Energy {
    let adjustment = MethodAdjustment::fit(rows, MeterKind::Ipmi, MeterKind::Pdu);
    rows.iter()
        .filter_map(|row| {
            let upstream = row.energies.facility.or(row.energies.pdu);
            match (upstream, row.energies.ipmi, &adjustment) {
                (Some(e), _, _) => Some(e),
                (None, Some(ipmi), Some(adj)) => Some(adj.apply(ipmi)),
                (None, Some(ipmi), None) => Some(ipmi),
                (None, None, _) => row.energies.turbostat,
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::EnergyByMethod;

    fn kwh(v: f64) -> Energy {
        Energy::from_kilowatt_hours(v)
    }

    fn row(site: &str, fac: Option<f64>, pdu: Option<f64>, ipmi: Option<f64>) -> SiteEnergyReport {
        SiteEnergyReport {
            site: site.into(),
            energies: EnergyByMethod {
                facility: fac.map(kwh),
                pdu: pdu.map(kwh),
                ipmi: ipmi.map(kwh),
                turbostat: None,
            },
            nodes: 1,
        }
    }

    #[test]
    fn fit_is_energy_weighted() {
        // Site A: ipmi/pdu = 0.8 at 1000 kWh; site B: 0.95 at 100 kWh.
        let rows = vec![
            row("A", None, Some(1_000.0), Some(800.0)),
            row("B", None, Some(100.0), Some(95.0)),
        ];
        let adj = MethodAdjustment::fit(&rows, MeterKind::Ipmi, MeterKind::Pdu).unwrap();
        // Energy-weighted: (1000+100)/(800+95) = 1.2291…
        assert!((adj.factor - 1_100.0 / 895.0).abs() < 1e-9);
        assert_eq!(adj.calibrated_on, vec!["A".to_string(), "B".to_string()]);
        let corrected = adj.apply(kwh(895.0));
        assert!((corrected.kilowatt_hours() - 1_100.0).abs() < 1e-9);
    }

    #[test]
    fn fit_requires_overlap() {
        let rows = vec![row("A", None, None, Some(100.0))];
        assert!(MethodAdjustment::fit(&rows, MeterKind::Ipmi, MeterKind::Pdu).is_none());
    }

    #[test]
    fn adjusted_total_corrects_ipmi_only_sites() {
        // Calibration site: ipmi underreads by 20%.
        let rows = vec![
            row("CAL", None, Some(1_000.0), Some(800.0)),
            row("ONLY-IPMI", None, None, Some(400.0)),
        ];
        let total = adjusted_total(&rows);
        // 1000 (pdu) + 400×1.25 (adjusted) = 1500.
        assert!((total.kilowatt_hours() - 1_500.0).abs() < 1e-9);
        // Raw best-estimate total would be 1400.
        let raw = crate::aggregate::total_best_estimate(&rows);
        assert!((raw.kilowatt_hours() - 1_400.0).abs() < 1e-9);
    }

    #[test]
    fn adjusted_total_without_calibration_falls_back() {
        let rows = vec![row("X", None, None, Some(500.0))];
        assert!((adjusted_total(&rows).kilowatt_hours() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn quality_report_completeness() {
        let rows = vec![
            row("FULL", Some(1.0), Some(1.0), Some(1.0)), // 3 of 4 methods
            row("IPMI", None, None, Some(1.0)),           // 1 of 4
        ];
        let q = assess(&rows);
        assert!((q.completeness - 4.0 / 8.0).abs() < 1e-9);
        assert_eq!(q.missing.len(), 2);
        assert_eq!(q.missing[1].1.len(), 3);
    }

    #[test]
    fn worst_spread_found() {
        let rows = vec![
            row("TIGHT", None, Some(100.0), Some(99.0)),
            row("WIDE", None, Some(100.0), Some(70.0)),
        ];
        let q = assess(&rows);
        let (site, spread) = q.worst_spread.unwrap();
        assert_eq!(site, "WIDE");
        assert!((spread - 0.30).abs() < 1e-9);
    }

    #[test]
    fn paper_adjusted_total_exceeds_raw() {
        // Using the published Table 2: DUR & SCARF calibrate IPMI→PDU at
        // ~0.77, so the IPMI-only sites (CAM, Cloud, IMP) get upscaled and
        // the adjusted total exceeds the raw 18,760 kWh.
        let rows = vec![
            row("QMUL", Some(1_299.0), Some(1_299.0), Some(1_279.0)),
            row("CAM", None, None, Some(261.0)),
            row("DUR", Some(8_154.0), Some(8_154.0), Some(6_267.0)),
            row("STFC-CLOUD", None, None, Some(3_831.0)),
            row("STFC-SCARF", None, Some(4_271.0), Some(3_292.0)),
            row("IMP", None, None, Some(944.0)),
        ];
        let raw = crate::aggregate::total_best_estimate(&rows).kilowatt_hours();
        let adjusted = adjusted_total(&rows).kilowatt_hours();
        assert!((raw - 18_760.0).abs() < 1e-9);
        assert!(
            adjusted > raw + 800.0,
            "adjusted {adjusted:.0} should sit well above raw {raw:.0}"
        );
        // And it lands in the right ballpark of the paper's effective
        // 19,380 kWh (the unexplained Table 3 input — see DESIGN.md).
        assert!(
            (adjusted - 19_380.0).abs() / 19_380.0 < 0.05,
            "adjusted {adjusted:.0} vs paper effective 19,380"
        );
    }
}
