//! Rack-level aggregation: the middle tier of the node→rack→site
//! hierarchy.
//!
//! The paper's PDU figures are physically *rack* readings summed per site.
//! Modelling the rack tier explicitly supports the operational questions
//! a site team actually asks of PDU data — which racks run hot, how much
//! headroom each circuit has — and validates that the hierarchy sums
//! consistently (rack totals = site totals), which is the invariant bulk
//! metering relies on.

use crate::collector::SiteTelemetryConfig;
use crate::sources::UtilizationSource;
use iriscast_units::{Energy, Period, Power};
use serde::{Deserialize, Serialize};

/// Sequential assignment of a site's nodes to racks of fixed capacity.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RackLayout {
    /// Nodes per rack (the last rack may be partial).
    pub per_rack: u32,
    /// Total nodes in the site.
    pub nodes: u32,
}

impl RackLayout {
    /// Creates a layout.
    ///
    /// # Panics
    /// If `per_rack` is zero.
    pub fn new(nodes: u32, per_rack: u32) -> Self {
        assert!(per_rack > 0, "racks must hold at least one node");
        RackLayout { per_rack, nodes }
    }

    /// Number of racks.
    pub fn rack_count(&self) -> u32 {
        self.nodes.div_ceil(self.per_rack).max(1)
    }

    /// Rack index of `node`.
    pub fn rack_of(&self, node: u64) -> u32 {
        (node / u64::from(self.per_rack)) as u32
    }

    /// Node-id range of `rack`.
    pub fn nodes_in(&self, rack: u32) -> std::ops::Range<u64> {
        let lo = u64::from(rack) * u64::from(self.per_rack);
        let hi = (lo + u64::from(self.per_rack)).min(u64::from(self.nodes));
        lo..hi
    }
}

/// Per-rack energy over a window, with occupancy statistics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RackEnergyReport {
    /// Layout used.
    pub layout: RackLayout,
    /// Energy per rack, index = rack id.
    pub energies: Vec<Energy>,
    /// Peak instantaneous rack power observed (per rack).
    pub peak_power: Vec<Power>,
}

impl RackEnergyReport {
    /// Total site energy (sum of racks).
    pub fn total(&self) -> Energy {
        self.energies.iter().copied().sum()
    }

    /// The hottest rack as `(rack, energy)`, or `None` for a report with
    /// no racks.
    ///
    /// [`rack_energies`] always produces at least one rack, but the
    /// fields are public — a deserialized or hand-built empty report
    /// must surface as a value, not a panic (the PR 4 rule for every
    /// data-dependent path).
    pub fn hottest(&self) -> Option<(u32, Energy)> {
        let (i, &e) = self
            .energies
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))?;
        Some((i as u32, e))
    }

    /// Imbalance factor: hottest rack energy over the mean rack energy —
    /// 1.0 is a perfectly balanced room.
    ///
    /// Degenerate rooms report 1.0: an empty report (whose mean would be
    /// the `0/0 → NaN` that used to slip past a `<= 0.0` guard — NaN
    /// compares false), an all-zero room, and NaN-bearing energies all
    /// take the guard, so the answer is always finite.
    pub fn imbalance(&self) -> f64 {
        let Some((_, hottest)) = self.hottest() else {
            return 1.0;
        };
        let mean = self.total() / self.energies.len() as f64;
        // The explicit NaN arm matters: NaN compares false against
        // every threshold, so a bare `<= 0.0` guard lets a poisoned
        // mean fall through into a NaN ratio.
        if mean.joules().is_nan() || mean.joules() <= 0.0 {
            return 1.0;
        }
        hottest / mean
    }

    /// Racks whose peak power exceeds `circuit_limit` — provisioning
    /// violations a real PDU would trip on.
    pub fn over_provisioned(&self, circuit_limit: Power) -> Vec<u32> {
        self.peak_power
            .iter()
            .enumerate()
            .filter(|(_, p)| **p > circuit_limit)
            .map(|(i, _)| i as u32)
            .collect()
    }
}

/// Computes truth-level (instrument-free) per-rack energies by sweeping
/// the site's nodes through their power models, mirroring the collector's
/// node enumeration so rack ids line up with collector node ids.
pub fn rack_energies(
    config: &SiteTelemetryConfig,
    layout: RackLayout,
    period: Period,
    utilization: &dyn UtilizationSource,
) -> RackEnergyReport {
    assert_eq!(
        layout.nodes,
        config.total_nodes(),
        "layout covers a different node count than the site config"
    );
    let racks = layout.rack_count() as usize;
    let mut energy_j = vec![0.0f64; racks];
    let mut peak_w = vec![0.0f64; racks];
    let step_secs = config.sample_step.as_secs() as f64;

    let mut node: u64 = 0;
    for group in &config.groups {
        for _ in 0..group.count {
            let rack = layout.rack_of(node) as usize;
            for t in period.iter_steps(config.sample_step) {
                let u = utilization.utilization(node, t);
                let w = group.power_model.wall_power(u).watts();
                energy_j[rack] += w * step_secs;
            }
            node += 1;
        }
    }
    // Peak rack power: re-sweep per time step (rack power is a sum over
    // contemporaneous nodes, not over the node loop above).
    for t in period.iter_steps(config.sample_step) {
        let mut rack_w = vec![0.0f64; racks];
        let mut node: u64 = 0;
        for group in &config.groups {
            for _ in 0..group.count {
                let u = utilization.utilization(node, t);
                rack_w[layout.rack_of(node) as usize] += group.power_model.wall_power(u).watts();
                node += 1;
            }
        }
        for (p, w) in peak_w.iter_mut().zip(rack_w) {
            *p = p.max(w);
        }
    }

    RackEnergyReport {
        layout,
        energies: energy_j.into_iter().map(Energy::from_joules).collect(),
        peak_power: peak_w.into_iter().map(Power::from_watts).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{NodeGroupTelemetry, SiteCollector};
    use crate::sources::{FlatUtilization, SyntheticUtilization};
    use crate::NodePowerModel;
    use iriscast_units::SimDuration;

    fn config(nodes: u32) -> SiteTelemetryConfig {
        let mut cfg = SiteTelemetryConfig::new(
            "RACKED",
            vec![NodeGroupTelemetry {
                label: "compute".into(),
                count: nodes,
                power_model: NodePowerModel::linear(
                    Power::from_watts(100.0),
                    Power::from_watts(500.0),
                ),
            }],
            5,
        );
        cfg.sample_step = SimDuration::from_secs(1_800);
        cfg
    }

    #[test]
    fn layout_arithmetic() {
        let l = RackLayout::new(100, 42);
        assert_eq!(l.rack_count(), 3);
        assert_eq!(l.rack_of(0), 0);
        assert_eq!(l.rack_of(41), 0);
        assert_eq!(l.rack_of(42), 1);
        assert_eq!(l.nodes_in(2), 84..100);
        // Degenerate: zero nodes still reports one (empty) rack.
        assert_eq!(RackLayout::new(0, 10).rack_count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_capacity_rejected() {
        let _ = RackLayout::new(10, 0);
    }

    #[test]
    fn rack_totals_equal_site_truth() {
        let cfg = config(100);
        let util = SyntheticUtilization::calibrated(0.55, 9);
        let layout = RackLayout::new(100, 42);
        let report = rack_energies(&cfg, layout, Period::snapshot_24h(), &util);
        assert_eq!(report.energies.len(), 3);

        let collector = SiteCollector::new(cfg);
        let site = collector.collect(Period::snapshot_24h(), &util, 4).unwrap();
        let diff = (report.total().joules() - site.true_energy().joules()).abs();
        assert!(
            diff < site.true_energy().joules() * 1e-9 + 1e-3,
            "hierarchy does not sum: {diff} J"
        );
    }

    #[test]
    fn uniform_load_is_balanced_partial_rack_excepted() {
        let cfg = config(84); // exactly two racks of 42
        let layout = RackLayout::new(84, 42);
        let report = rack_energies(&cfg, layout, Period::snapshot_24h(), &FlatUtilization(0.5));
        assert!((report.imbalance() - 1.0).abs() < 1e-9);
        let (_, hottest) = report.hottest().unwrap();
        assert!((hottest.joules() - report.energies[1].joules()).abs() <= 1e-9);
    }

    #[test]
    fn partial_rack_shows_as_imbalance() {
        let cfg = config(100);
        let layout = RackLayout::new(100, 42);
        let report = rack_energies(&cfg, layout, Period::snapshot_24h(), &FlatUtilization(0.5));
        // Rack 2 holds 16 nodes vs 42: hottest/mean > 1.
        assert!(report.imbalance() > 1.2);
        // The two full racks tie; either may win, but never the partial one.
        assert!(report.hottest().unwrap().0 < 2);
        assert!(report.energies[2] < report.energies[0]);
    }

    #[test]
    fn empty_report_is_a_value_not_a_panic() {
        // The fields are public, so an empty report is representable;
        // hottest() used to `expect` and imbalance() used to compute a
        // 0/0 → NaN mean that slipped past its `<= 0.0` guard (NaN
        // compares false) and then panicked inside hottest().
        let empty = RackEnergyReport {
            layout: RackLayout::new(0, 10),
            energies: vec![],
            peak_power: vec![],
        };
        assert_eq!(empty.hottest(), None);
        assert_eq!(empty.imbalance(), 1.0);
        assert!(empty.over_provisioned(Power::from_watts(1.0)).is_empty());
        assert_eq!(empty.total(), Energy::from_joules(0.0));
    }

    #[test]
    fn nan_energies_keep_imbalance_finite() {
        // A NaN energy poisons both total and mean; the NaN-safe guard
        // must answer 1.0 instead of propagating NaN (or panicking).
        let poisoned = RackEnergyReport {
            layout: RackLayout::new(2, 1),
            energies: vec![Energy::from_joules(f64::NAN), Energy::from_joules(1.0)],
            peak_power: vec![Power::from_watts(0.0); 2],
        };
        assert!(poisoned.imbalance().is_finite());
        assert_eq!(poisoned.imbalance(), 1.0);
        // An all-zero room is balanced by definition, not 0/0.
        let idle = RackEnergyReport {
            layout: RackLayout::new(2, 1),
            energies: vec![Energy::from_joules(0.0); 2],
            peak_power: vec![Power::from_watts(0.0); 2],
        };
        assert_eq!(idle.imbalance(), 1.0);
    }

    #[test]
    fn circuit_limit_violations_detected() {
        let cfg = config(84);
        let layout = RackLayout::new(84, 42);
        let report = rack_energies(&cfg, layout, Period::snapshot_24h(), &FlatUtilization(1.0));
        // 42 nodes × 500 W = 21 kW per rack.
        let tight = Power::from_kilowatts(20.0);
        let roomy = Power::from_kilowatts(25.0);
        assert_eq!(report.over_provisioned(tight), vec![0, 1]);
        assert!(report.over_provisioned(roomy).is_empty());
    }
}
