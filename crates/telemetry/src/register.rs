//! Cumulative energy registers: how facility meters actually report.
//!
//! Bulk facility meters do not stream watts — they expose a monotonically
//! increasing kWh register that is read periodically (half-hourly here).
//! Reconstructing interval energy means differencing consecutive readings
//! and handling the two classic artefacts: register **rollover** (the
//! register wraps at a fixed modulus, e.g. 1,000,000 kWh) and **resets**
//! (a replaced meter restarts near zero). This module implements the
//! encode/decode pair, which the collector uses for the Facility column.

use iriscast_units::Energy;
use serde::{Deserialize, Serialize};

/// A cumulative kWh register with finite resolution and modulus.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CumulativeRegister {
    /// Reading resolution in kWh (registers truncate, not round).
    pub resolution_kwh: f64,
    /// Register wraps to zero after this many kWh.
    pub modulus_kwh: f64,
    accumulated_kwh: f64,
}

impl CumulativeRegister {
    /// A register starting at `initial_kwh` with 1 kWh resolution and a
    /// 1,000,000 kWh modulus (typical utility meter).
    pub fn new(initial_kwh: f64) -> Self {
        CumulativeRegister {
            resolution_kwh: 1.0,
            modulus_kwh: 1_000_000.0,
            accumulated_kwh: initial_kwh,
        }
    }

    /// Overrides resolution and modulus.
    ///
    /// # Panics
    /// If either is not positive.
    pub fn with_scale(mut self, resolution_kwh: f64, modulus_kwh: f64) -> Self {
        assert!(resolution_kwh > 0.0, "resolution must be positive");
        assert!(modulus_kwh > 0.0, "modulus must be positive");
        self.resolution_kwh = resolution_kwh;
        self.modulus_kwh = modulus_kwh;
        self
    }

    /// Feeds `interval_energy` through the register and returns the new
    /// *displayed* reading (truncated to resolution, wrapped at modulus).
    pub fn accumulate(&mut self, interval_energy: Energy) -> f64 {
        self.accumulated_kwh += interval_energy.kilowatt_hours();
        self.display()
    }

    /// Current displayed reading.
    pub fn display(&self) -> f64 {
        let wrapped = self.accumulated_kwh.rem_euclid(self.modulus_kwh);
        (wrapped / self.resolution_kwh).floor() * self.resolution_kwh
    }
}

/// Reconstructs total energy from a sequence of displayed register
/// readings, handling rollover (a drop of more than half the modulus is
/// treated as a wrap) and ignoring meter resets (a smaller backward step,
/// which contributes zero rather than a huge wrap-around delta).
pub fn decode_register_readings(readings: &[f64], modulus_kwh: f64) -> Energy {
    assert!(modulus_kwh > 0.0, "modulus must be positive");
    let mut total = 0.0;
    for w in readings.windows(2) {
        let delta = w[1] - w[0];
        if delta >= 0.0 {
            total += delta;
        } else if -delta > modulus_kwh / 2.0 {
            // Rollover: the register wrapped past the modulus.
            total += delta + modulus_kwh;
        }
        // else: meter reset/replacement — skip the interval (data quality
        // report will show the gap).
    }
    Energy::from_kilowatt_hours(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_and_truncation() {
        let mut reg = CumulativeRegister::new(100.0);
        // +0.6 kWh: display still truncates to 100.
        assert_eq!(reg.accumulate(Energy::from_kilowatt_hours(0.6)), 100.0);
        // +0.6 more (101.2): display 101.
        assert_eq!(reg.accumulate(Energy::from_kilowatt_hours(0.6)), 101.0);
    }

    #[test]
    fn rollover_wraps_display() {
        let mut reg = CumulativeRegister::new(999.0).with_scale(1.0, 1_000.0);
        assert_eq!(reg.display(), 999.0);
        assert_eq!(reg.accumulate(Energy::from_kilowatt_hours(2.0)), 1.0);
    }

    #[test]
    fn decode_simple_sequence() {
        let readings = [100.0, 150.0, 225.0, 300.0];
        let e = decode_register_readings(&readings, 1_000_000.0);
        assert!((e.kilowatt_hours() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn decode_with_rollover() {
        let readings = [999_990.0, 999_998.0, 5.0, 12.0];
        let e = decode_register_readings(&readings, 1_000_000.0);
        // 8 + (5 − 999998 + 1e6 = 7) + 7 = 22.
        assert!((e.kilowatt_hours() - 22.0).abs() < 1e-9);
    }

    #[test]
    fn decode_ignores_meter_reset() {
        // Reading drops by less than half the modulus: a reset, not a wrap.
        let readings = [500.0, 520.0, 10.0, 25.0];
        let e = decode_register_readings(&readings, 1_000_000.0);
        // 20 + (skip) + 15.
        assert!((e.kilowatt_hours() - 35.0).abs() < 1e-9);
    }

    #[test]
    fn decode_degenerate_inputs() {
        assert_eq!(decode_register_readings(&[], 1_000.0), Energy::ZERO);
        assert_eq!(decode_register_readings(&[42.0], 1_000.0), Energy::ZERO);
    }

    #[test]
    fn round_trip_through_register() {
        // Simulate a day of half-hourly readings of a ~54 kW load and
        // check the decoded energy matches to register resolution.
        let mut reg = CumulativeRegister::new(123_456.0);
        let per_interval = Energy::from_kilowatt_hours(27.04); // 54.08 kW × 0.5 h
        let mut readings = vec![reg.display()];
        for _ in 0..48 {
            readings.push(reg.accumulate(per_interval));
        }
        let decoded = decode_register_readings(&readings, 1_000_000.0);
        let truth = per_interval * 48.0;
        let err = (decoded.kilowatt_hours() - truth.kilowatt_hours()).abs();
        assert!(err <= 1.0, "decode error {err} kWh exceeds resolution");
    }

    #[test]
    #[should_panic(expected = "resolution must be positive")]
    fn rejects_bad_scale() {
        let _ = CumulativeRegister::new(0.0).with_scale(0.0, 100.0);
    }
}
