//! Utilisation sources: what drives node power.

use iriscast_units::{Period, SimDuration, Timestamp};

/// Anything that can answer "how busy was node `n` at time `t`?".
///
/// Implementations must be pure functions of `(node, t)` so the collector
/// can evaluate them from worker threads in any order and still produce
/// deterministic output.
pub trait UtilizationSource: Sync {
    /// Utilisation of `node` at `t`, in `[0, 1]`.
    fn utilization(&self, node: u64, t: Timestamp) -> f64;

    /// Fills `out[k] = self.utilization(first_node + k, t)` for a run of
    /// consecutive nodes at one sample instant — the bulk entry point the
    /// collector's SoA hot loop drives (one virtual call per chunk-step
    /// instead of one per node-sample).
    ///
    /// Implementations may override this to hoist per-instant work out
    /// of the node loop, but must produce **exactly** the values the
    /// scalar method returns: the collector's determinism guarantees
    /// (worker-count invariance, warm ≡ cold collects) ride on it.
    fn fill_step(&self, first_node: u64, t: Timestamp, out: &mut [f64]) {
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.utilization(first_node + k as u64, t);
        }
    }
}

/// Constant utilisation for every node — the simplest calibration source.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FlatUtilization(pub f64);

impl UtilizationSource for FlatUtilization {
    fn utilization(&self, _node: u64, _t: Timestamp) -> f64 {
        self.0.clamp(0.0, 1.0)
    }

    fn fill_step(&self, _first_node: u64, _t: Timestamp, out: &mut [f64]) {
        out.fill(self.0.clamp(0.0, 1.0));
    }
}

/// Synthetic utilisation with a diurnal swell, slow per-node drift and
/// fast per-sample jitter — statistically similar to a busy batch system
/// without needing a full workload simulation.
///
/// The construction is *hash-based*, not iterative: the value at `(node,
/// t)` is computed directly from a SplitMix64 hash of the seed, node and
/// time bucket. That makes the source pure (see [`UtilizationSource`]) and
/// means parallel evaluation order cannot change results.
///
/// The mean of the generated process equals `mean` up to clamping bias;
/// keep `mean ± diurnal_amplitude ± 3·noise_sd` inside `[0, 1]` for exact
/// calibration.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SyntheticUtilization {
    /// Target time-average utilisation.
    pub mean: f64,
    /// Amplitude of the shared diurnal component.
    pub diurnal_amplitude: f64,
    /// Standard deviation of per-sample noise.
    pub noise_sd: f64,
    /// Stream seed.
    pub seed: u64,
}

impl SyntheticUtilization {
    /// Creates a source with the given moments.
    pub fn new(mean: f64, diurnal_amplitude: f64, noise_sd: f64, seed: u64) -> Self {
        SyntheticUtilization {
            mean,
            diurnal_amplitude,
            noise_sd,
            seed,
        }
    }

    /// A calibrated source whose *time-mean* equals `mean` with gentle
    /// structure, for reproducing published site energies.
    pub fn calibrated(mean: f64, seed: u64) -> Self {
        // Keep the swing inside [0,1] for any mean in (0.08, 0.92) so the
        // clamp never bites and the mean stays exact.
        let headroom = (mean.min(1.0 - mean) - 0.01).max(0.0);
        let amplitude = (0.12f64).min(headroom * 0.7);
        let noise = (0.04f64).min(headroom * 0.25);
        SyntheticUtilization::new(mean, amplitude, noise, seed)
    }
}

/// SplitMix64 — tiny, fast, well-mixed hash used to derive per-(node,
/// bucket) pseudo-random values.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The accumulator seed for [`hash_uniform`].
const HASH_ACC: u64 = 0x51_7C_C1_B7_27_22_0A_95;

/// Uniform `[0, 1)` from a hash of the given words.
#[inline]
pub(crate) fn hash_uniform(words: &[u64]) -> f64 {
    let mut acc = HASH_ACC;
    for &w in words {
        acc = splitmix64(acc ^ w);
    }
    (acc >> 11) as f64 / (1u64 << 53) as f64
}

/// Finishes a two-word [`hash_uniform`] from a pre-mixed first round:
/// `hash_uniform(&[a, b, c]) == hash_finish2(splitmix64(HASH_ACC ^ a), b, c)`.
/// Lets [`SyntheticUtilization::fill_step`] hoist the seed round out of
/// the per-node loop while staying bit-identical to the scalar path.
#[inline]
fn hash_finish2(acc: u64, b: u64, c: u64) -> f64 {
    let acc = splitmix64(splitmix64(acc ^ b) ^ c);
    (acc >> 11) as f64 / (1u64 << 53) as f64
}

impl UtilizationSource for SyntheticUtilization {
    fn utilization(&self, node: u64, t: Timestamp) -> f64 {
        use std::f64::consts::TAU;
        // Shared diurnal component: busiest in the working day. The sine
        // has zero time-mean, preserving the calibrated mean.
        let diurnal = self.diurnal_amplitude * ((t.hour_of_day() - 8.0) / 24.0 * TAU).sin();
        // Per-node slow drift: each node sits slightly above or below the
        // site mean for hours at a time (two-hour buckets, hash-mixed).
        let bucket = t.as_secs().div_euclid(7_200) as u64;
        let drift = (hash_uniform(&[self.seed, node, bucket]) - 0.5) * 4.0 * self.noise_sd;
        // Fast jitter per sample instant.
        let jitter = (hash_uniform(&[self.seed ^ 0xDEAD_BEEF, node, t.as_secs() as u64]) - 0.5)
            * 2.0
            * self.noise_sd;
        (self.mean + diurnal + drift + jitter).clamp(0.0, 1.0)
    }

    /// The scalar formula with everything node-independent hoisted out
    /// of the loop: the diurnal sine, the drift bucket, and the first
    /// SplitMix round of both hashes (which mixes only the seed). Four
    /// SplitMix rounds per node instead of six plus a `sin` — and
    /// bit-identical to [`SyntheticUtilization::utilization`], which the
    /// source test suite pins.
    fn fill_step(&self, first_node: u64, t: Timestamp, out: &mut [f64]) {
        use std::f64::consts::TAU;
        let diurnal = self.diurnal_amplitude * ((t.hour_of_day() - 8.0) / 24.0 * TAU).sin();
        let bucket = t.as_secs().div_euclid(7_200) as u64;
        let secs = t.as_secs() as u64;
        let drift_acc = splitmix64(HASH_ACC ^ self.seed);
        let jitter_acc = splitmix64(HASH_ACC ^ (self.seed ^ 0xDEAD_BEEF));
        let base = self.mean + diurnal;
        for (k, slot) in out.iter_mut().enumerate() {
            let node = first_node + k as u64;
            let drift = (hash_finish2(drift_acc, node, bucket) - 0.5) * 4.0 * self.noise_sd;
            let jitter = (hash_finish2(jitter_acc, node, secs) - 0.5) * 2.0 * self.noise_sd;
            *slot = (base + drift + jitter).clamp(0.0, 1.0);
        }
    }
}

/// A piecewise-constant per-node utilisation trace — the adapter the
/// workload simulator (or any recorded trace) feeds into the collector.
///
/// Node `n`'s trace is `traces[n]`; times before the trace start or after
/// its end read as the boundary values.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceUtilization {
    period: Period,
    step: SimDuration,
    traces: Vec<Vec<f64>>,
}

impl TraceUtilization {
    /// Builds a trace set covering `period` sampled every `step`;
    /// `traces[node][i]` is the utilisation in slot `i`.
    ///
    /// # Panics
    /// If any trace's length differs from the period's slot count, or no
    /// traces are supplied.
    pub fn new(period: Period, step: SimDuration, traces: Vec<Vec<f64>>) -> Self {
        assert!(!traces.is_empty(), "need at least one node trace");
        let slots = period.step_count(step);
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(
                t.len(),
                slots,
                "trace {i} has {} slots, period has {slots}",
                t.len()
            );
        }
        TraceUtilization {
            period,
            step,
            traces,
        }
    }

    /// Number of node traces held.
    pub fn node_count(&self) -> usize {
        self.traces.len()
    }

    /// Mean utilisation of one node's trace.
    pub fn node_mean(&self, node: usize) -> f64 {
        let t = &self.traces[node];
        t.iter().sum::<f64>() / t.len() as f64
    }
}

impl UtilizationSource for TraceUtilization {
    fn utilization(&self, node: u64, t: Timestamp) -> f64 {
        let trace = &self.traces[node as usize % self.traces.len()];
        let offset = (t - self.period.start()).as_secs();
        let idx = offset.div_euclid(self.step.as_secs());
        let idx = idx.clamp(0, trace.len() as i64 - 1) as usize;
        trace[idx].clamp(0.0, 1.0)
    }

    /// Hoists the slot-index arithmetic (time-only) out of the node loop.
    fn fill_step(&self, first_node: u64, t: Timestamp, out: &mut [f64]) {
        let offset = (t - self.period.start()).as_secs();
        let raw_idx = offset.div_euclid(self.step.as_secs());
        for (k, slot) in out.iter_mut().enumerate() {
            let trace = &self.traces[(first_node + k as u64) as usize % self.traces.len()];
            let idx = raw_idx.clamp(0, trace.len() as i64 - 1) as usize;
            *slot = trace[idx].clamp(0.0, 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_source() {
        let s = FlatUtilization(0.6);
        assert_eq!(s.utilization(0, Timestamp::EPOCH), 0.6);
        assert_eq!(FlatUtilization(1.4).utilization(0, Timestamp::EPOCH), 1.0);
        assert_eq!(FlatUtilization(-0.2).utilization(9, Timestamp::EPOCH), 0.0);
    }

    #[test]
    fn synthetic_mean_is_calibrated() {
        let s = SyntheticUtilization::calibrated(0.55, 42);
        let step = SimDuration::from_secs(30);
        let day = Period::snapshot_24h();
        let mut sum = 0.0;
        let mut n = 0usize;
        for node in 0..50u64 {
            for t in day.iter_steps(step) {
                sum += s.utilization(node, t);
                n += 1;
            }
        }
        let mean = sum / n as f64;
        assert!(
            (mean - 0.55).abs() < 0.01,
            "calibrated mean drifted: {mean:.3}"
        );
    }

    #[test]
    fn synthetic_values_in_range_even_at_extremes() {
        for target in [0.02, 0.5, 0.97] {
            let s = SyntheticUtilization::calibrated(target, 7);
            for node in 0..5u64 {
                for t in Period::snapshot_24h().iter_steps(SimDuration::from_minutes(7)) {
                    let u = s.utilization(node, t);
                    assert!((0.0..=1.0).contains(&u));
                }
            }
        }
    }

    #[test]
    fn synthetic_is_pure_and_node_dependent() {
        let s = SyntheticUtilization::calibrated(0.5, 1);
        let t = Timestamp::from_secs(12_345);
        assert_eq!(s.utilization(3, t), s.utilization(3, t));
        // Different nodes decorrelate (almost surely different).
        assert_ne!(s.utilization(3, t), s.utilization(4, t));
    }

    #[test]
    fn synthetic_has_diurnal_structure() {
        let s = SyntheticUtilization::new(0.5, 0.2, 0.0, 9);
        // 14:00 (peak of sin centred at 8h+6h) vs 02:00 (trough).
        let day_mean: f64 = (0..100)
            .map(|n| s.utilization(n, Timestamp::from_hours(14.0)))
            .sum::<f64>()
            / 100.0;
        let night_mean: f64 = (0..100)
            .map(|n| s.utilization(n, Timestamp::from_hours(2.0)))
            .sum::<f64>()
            / 100.0;
        assert!(
            day_mean > night_mean + 0.2,
            "diurnal structure missing: day {day_mean:.2} night {night_mean:.2}"
        );
    }

    #[test]
    fn trace_lookup() {
        let period = Period::starting_at(Timestamp::EPOCH, SimDuration::from_secs(90));
        let traces = vec![vec![0.1, 0.5, 0.9], vec![1.0, 1.0, 0.0]];
        let t = TraceUtilization::new(period, SimDuration::from_secs(30), traces);
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.utilization(0, Timestamp::from_secs(0)), 0.1);
        assert_eq!(t.utilization(0, Timestamp::from_secs(31)), 0.5);
        assert_eq!(t.utilization(1, Timestamp::from_secs(60)), 0.0);
        // Out-of-range times clamp to the boundary slots.
        assert_eq!(t.utilization(0, Timestamp::from_secs(-5)), 0.1);
        assert_eq!(t.utilization(0, Timestamp::from_secs(500)), 0.9);
        assert!((t.node_mean(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "slots")]
    fn trace_length_must_match_period() {
        let period = Period::starting_at(Timestamp::EPOCH, SimDuration::from_secs(90));
        let _ = TraceUtilization::new(period, SimDuration::from_secs(30), vec![vec![0.5; 2]]);
    }

    #[test]
    fn fill_step_is_bit_identical_to_scalar_lookups() {
        // The SoA collector runs entirely on `fill_step`; every override
        // must reproduce the scalar method exactly or worker-count
        // invariance (and warm ≡ cold) silently breaks.
        let period = Period::snapshot_24h();
        let traces: Vec<Vec<f64>> = (0..5)
            .map(|n| {
                (0..period.step_count(SimDuration::from_secs(1_800)))
                    .map(|i| ((n * 7 + i) % 10) as f64 / 10.0)
                    .collect()
            })
            .collect();
        let trace_src = TraceUtilization::new(period, SimDuration::from_secs(1_800), traces);
        let synth = SyntheticUtilization::calibrated(0.6, 1234);
        let flat = FlatUtilization(0.37);
        let sources: [&dyn UtilizationSource; 3] = [&flat, &synth, &trace_src];
        let mut bulk = vec![0.0; 64];
        for src in sources {
            for t in period.iter_steps(SimDuration::from_secs(7_200)) {
                for first in [0u64, 3, 61] {
                    src.fill_step(first, t, &mut bulk);
                    for (k, &got) in bulk.iter().enumerate() {
                        let want = src.utilization(first + k as u64, t);
                        assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "node {} at {t:?}",
                            first + k as u64
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn splitmix_mixes() {
        // Adjacent inputs must decorrelate.
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        let u = hash_uniform(&[1, 2, 3]);
        assert!((0.0..1.0).contains(&u));
        assert_eq!(hash_uniform(&[1, 2, 3]), u);
    }
}
