//! Regular power/energy time series with gaps, resampling and integration.
//!
//! Two series types cover the measurement pipeline end to end:
//!
//! * [`PowerSeries`] — instantaneous watts on a fine grid (30-second
//!   meter samples), with `NaN` gaps, [`GapPolicy`] fills, left-Riemann /
//!   trapezoidal integration, and downsampling;
//! * [`EnergySeries`] — energy *per slot* on a coarse grid (half-hourly
//!   settlement periods), the form that convolves with grid
//!   carbon-intensity data and feeds the time-resolved assessment
//!   engine.
//!
//! The bridge between them is [`PowerSeries::to_energy_series`];
//! [`EnergySeries::grid`] then exposes the slot grid to the alignment
//! rules in [`iriscast_units::align`], and
//! [`EnergySeries::resample`] moves energy between grids exactly
//! (sums when coarsening, even splits when refining — totals are
//! conserved either way).
//!
//! ```
//! use iriscast_telemetry::timeseries::{GapPolicy, PowerSeries};
//! use iriscast_units::{SimDuration, Timestamp};
//!
//! // One hour of 30-second samples at a constant 1 kW, with a dropout.
//! let mut watts = vec![1_000.0; 120];
//! watts[7] = f64::NAN;
//! let power = PowerSeries::from_watts(
//!     Timestamp::EPOCH,
//!     SimDuration::from_secs(30),
//!     watts,
//! );
//!
//! // Integrate to half-hourly slots (the carbon-intensity granularity)…
//! let half_hourly = power.to_energy_series(
//!     SimDuration::SETTLEMENT_PERIOD,
//!     GapPolicy::HoldLast,
//! );
//! assert_eq!(half_hourly.len(), 2);
//!
//! // …then resample: totals are conserved in both directions.
//! let hourly = half_hourly.resample(SimDuration::HOUR).unwrap();
//! let fine = half_hourly.resample(SimDuration::from_minutes(10)).unwrap();
//! assert_eq!(hourly.len(), 1);
//! assert_eq!(fine.len(), 6);
//! assert!((hourly.total().joules() - half_hourly.total().joules()).abs() < 1e-9);
//! assert!((fine.total().joules() - half_hourly.total().joules()).abs() < 1e-9);
//! ```

use iriscast_units::{Energy, Period, Power, SimDuration, TimeGrid, Timestamp, UnitsError};
use serde::{Deserialize, Serialize};

/// How to treat missing samples (encoded as `NaN`) during integration and
/// aggregation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GapPolicy {
    /// Carry the previous valid sample forward (meter hold). A leading gap
    /// takes the first valid sample backward.
    HoldLast,
    /// Linearly interpolate between the neighbouring valid samples.
    Interpolate,
    /// Treat missing intervals as zero power (undercounts; what naive
    /// pipelines do implicitly).
    Zero,
}

/// A regularly sampled power series for one measurement stream.
///
/// Samples are instantaneous watts at `start + i·step`; a sample of `NaN`
/// marks a gap (meter dropout). The series is the workhorse of the
/// telemetry pipeline, so the layout is a bare `Vec<f64>` and every
/// operation is single-pass and allocation-conscious.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerSeries {
    start: Timestamp,
    step: SimDuration,
    watts: Vec<f64>,
}

impl PowerSeries {
    /// Builds a series from raw watt samples (`NaN` = missing).
    ///
    /// # Panics
    /// If `step` is not positive or `watts` is empty.
    pub fn from_watts(start: Timestamp, step: SimDuration, watts: Vec<f64>) -> Self {
        assert!(step.as_secs() > 0, "step must be positive");
        assert!(!watts.is_empty(), "a power series cannot be empty");
        PowerSeries { start, step, watts }
    }

    /// A zero-power series covering `period`.
    pub fn zeros(period: Period, step: SimDuration) -> Self {
        let n = period.step_count(step).max(1);
        PowerSeries::from_watts(period.start(), step, vec![0.0; n])
    }

    /// First sample instant.
    pub fn start(&self) -> Timestamp {
        self.start
    }

    /// Sampling step.
    pub fn step(&self) -> SimDuration {
        self.step
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.watts.len()
    }

    /// `true` when the series holds no samples (construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.watts.is_empty()
    }

    /// The covered period `[start, start + len·step)`.
    pub fn period(&self) -> Period {
        Period::starting_at(self.start, self.step * self.watts.len() as i64)
    }

    /// Consumes the series, returning its sample buffer — the recycling
    /// half of buffer-reuse pipelines (see
    /// [`crate::collector::CollectScratch::recycle`]).
    pub fn into_watts(self) -> Vec<f64> {
        self.watts
    }

    /// Raw samples in watts (`NaN` = missing).
    pub fn watts(&self) -> &[f64] {
        &self.watts
    }

    /// Mutable raw samples — used by meters writing in place.
    pub fn watts_mut(&mut self) -> &mut [f64] {
        &mut self.watts
    }

    /// Sample at index `i` as a typed power, `None` if missing.
    pub fn get(&self, i: usize) -> Option<Power> {
        let w = *self.watts.get(i)?;
        if w.is_nan() {
            None
        } else {
            Some(Power::from_watts(w))
        }
    }

    /// Fraction of samples that are valid (non-NaN).
    pub fn valid_fraction(&self) -> f64 {
        let valid = self.watts.iter().filter(|w| !w.is_nan()).count();
        valid as f64 / self.watts.len() as f64
    }

    /// Element-wise sum with another series sharing the same grid.
    ///
    /// A gap in either operand is a gap in the result only if both are
    /// missing; a single missing operand contributes zero (partial
    /// visibility, which is how real aggregation behaves).
    ///
    /// # Panics
    /// If grids (start/step/len) differ.
    pub fn add_assign_lenient(&mut self, other: &PowerSeries) {
        assert_eq!(self.start, other.start, "series grids differ (start)");
        assert_eq!(self.step, other.step, "series grids differ (step)");
        assert_eq!(
            self.watts.len(),
            other.watts.len(),
            "series grids differ (len)"
        );
        for (a, &b) in self.watts.iter_mut().zip(other.watts.iter()) {
            match (a.is_nan(), b.is_nan()) {
                (true, true) => {}
                (true, false) => *a = b,
                (false, true) => {}
                (false, false) => *a += b,
            }
        }
    }

    /// Scales every valid sample by `factor`.
    pub fn scale(&mut self, factor: f64) {
        for w in &mut self.watts {
            if !w.is_nan() {
                *w *= factor;
            }
        }
    }

    /// Returns a copy with gaps filled per `policy`.
    ///
    /// An all-gap series filled with `HoldLast`/`Interpolate` has no
    /// anchor values and is returned zero-filled.
    pub fn fill_gaps(&self, policy: GapPolicy) -> PowerSeries {
        let mut out = self.clone();
        match policy {
            GapPolicy::Zero => {
                for w in &mut out.watts {
                    if w.is_nan() {
                        *w = 0.0;
                    }
                }
            }
            GapPolicy::HoldLast => {
                let mut last: Option<f64> = None;
                for w in &mut out.watts {
                    if w.is_nan() {
                        if let Some(l) = last {
                            *w = l;
                        }
                    } else {
                        last = Some(*w);
                    }
                }
                // Leading gap: back-fill from the first valid sample.
                let first_valid = out.watts.iter().copied().find(|w| !w.is_nan());
                match first_valid {
                    Some(f) => {
                        for w in &mut out.watts {
                            if w.is_nan() {
                                *w = f;
                            } else {
                                break;
                            }
                        }
                    }
                    None => out.watts.fill(0.0),
                }
            }
            GapPolicy::Interpolate => {
                let n = out.watts.len();
                let mut i = 0;
                let mut prev_valid: Option<usize> = None;
                while i < n {
                    if !out.watts[i].is_nan() {
                        prev_valid = Some(i);
                        i += 1;
                        continue;
                    }
                    // Find the end of the gap.
                    let gap_start = i;
                    while i < n && out.watts[i].is_nan() {
                        i += 1;
                    }
                    let next_valid = if i < n { Some(i) } else { None };
                    match (prev_valid, next_valid) {
                        (Some(p), Some(q)) => {
                            let a = out.watts[p];
                            let b = out.watts[q];
                            let span = (q - p) as f64;
                            for (k, w) in out.watts[gap_start..i].iter_mut().enumerate() {
                                let frac = (gap_start + k - p) as f64 / span;
                                *w = a + (b - a) * frac;
                            }
                        }
                        (Some(p), None) => {
                            let a = out.watts[p];
                            out.watts[gap_start..].fill(a);
                        }
                        (None, Some(q)) => {
                            let b = out.watts[q];
                            out.watts[..q].fill(b);
                        }
                        (None, None) => out.watts.fill(0.0),
                    }
                }
            }
        }
        out
    }

    /// Total energy by left-Riemann integration: each sample holds for one
    /// full step. Gaps are filled with `policy` first.
    ///
    /// This matches how interval meters actually accumulate (the reading
    /// at the start of a slot applies to the slot), and it makes a
    /// constant-power series integrate exactly.
    pub fn integrate(&self, policy: GapPolicy) -> Energy {
        let filled = self.fill_gaps(policy);
        let sum_w: f64 = filled.watts.iter().sum();
        Power::from_watts(sum_w) * self.step
    }

    /// Trapezoidal integration over the sample instants (n−1 intervals).
    /// Slightly underweights the endpoints relative to
    /// [`PowerSeries::integrate`]; exposed for the integration-rule
    /// ablation bench.
    pub fn integrate_trapezoid(&self, policy: GapPolicy) -> Energy {
        let filled = self.fill_gaps(policy);
        let w = &filled.watts;
        if w.len() < 2 {
            return Power::from_watts(w.first().copied().unwrap_or(0.0)) * self.step;
        }
        let interior: f64 = w[1..w.len() - 1].iter().sum();
        let mean_ends = (w[0] + w[w.len() - 1]) / 2.0;
        Power::from_watts(interior + mean_ends) * self.step
    }

    /// Per-slot energy over coarser windows of `window` (must be a
    /// multiple of `step`), e.g. 30-second samples → half-hourly kWh, the
    /// granularity carbon-intensity data arrives at.
    pub fn to_energy_series(&self, window: SimDuration, policy: GapPolicy) -> EnergySeries {
        assert!(
            window.as_secs() % self.step.as_secs() == 0,
            "window must be a multiple of the sampling step"
        );
        let per = (window.as_secs() / self.step.as_secs()) as usize;
        let filled = self.fill_gaps(policy);
        let mut slots = Vec::with_capacity(filled.watts.len().div_ceil(per));
        for chunk in filled.watts.chunks(per) {
            let sum_w: f64 = chunk.iter().sum();
            slots.push(Power::from_watts(sum_w) * self.step);
        }
        EnergySeries {
            start: self.start,
            step: window,
            values: slots,
        }
    }

    /// Downsamples to a coarser grid by averaging whole windows of
    /// `new_step` (must be a multiple of the current step). Windows whose
    /// samples are all missing stay missing; partially missing windows
    /// average their valid samples.
    pub fn resample(&self, new_step: SimDuration) -> PowerSeries {
        assert!(
            new_step.as_secs() % self.step.as_secs() == 0 && new_step >= self.step,
            "new step must be a positive multiple of the current step"
        );
        let per = (new_step.as_secs() / self.step.as_secs()) as usize;
        let mut out = Vec::with_capacity(self.watts.len().div_ceil(per));
        for chunk in self.watts.chunks(per) {
            let (sum, n) = chunk
                .iter()
                .filter(|w| !w.is_nan())
                .fold((0.0, 0usize), |(s, n), &w| (s + w, n + 1));
            out.push(if n == 0 { f64::NAN } else { sum / n as f64 });
        }
        PowerSeries::from_watts(self.start, new_step, out)
    }

    /// Serialises as CSV (`seconds,watts`; missing samples empty) for
    /// external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.watts.len() * 16 + 16);
        out.push_str("seconds,watts\n");
        for (i, w) in self.watts.iter().enumerate() {
            let t = self.start.as_secs() + self.step.as_secs() * i as i64;
            if w.is_nan() {
                out.push_str(&format!("{t},\n"));
            } else {
                out.push_str(&format!("{t},{w}\n"));
            }
        }
        out
    }

    /// Mean of valid samples, `None` when everything is missing.
    pub fn mean_power(&self) -> Option<Power> {
        let (sum, n) = self
            .watts
            .iter()
            .filter(|w| !w.is_nan())
            .fold((0.0, 0usize), |(s, n), &w| (s + w, n + 1));
        if n == 0 {
            None
        } else {
            Some(Power::from_watts(sum / n as f64))
        }
    }
}

/// Energy per fixed-width slot (e.g. kWh per settlement period).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergySeries {
    start: Timestamp,
    step: SimDuration,
    values: Vec<Energy>,
}

impl EnergySeries {
    /// Builds a series from per-slot energies.
    ///
    /// # Panics
    /// If `step` is not positive or `values` is empty.
    pub fn new(start: Timestamp, step: SimDuration, values: Vec<Energy>) -> Self {
        assert!(step.as_secs() > 0, "step must be positive");
        assert!(!values.is_empty(), "an energy series cannot be empty");
        EnergySeries {
            start,
            step,
            values,
        }
    }

    /// First slot start.
    pub fn start(&self) -> Timestamp {
        self.start
    }

    /// Slot width.
    pub fn step(&self) -> SimDuration {
        self.step
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the series holds no slots (construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Per-slot energies.
    pub fn values(&self) -> &[Energy] {
        &self.values
    }

    /// Iterates `(slot_period, energy)`.
    pub fn iter(&self) -> impl Iterator<Item = (Period, Energy)> + '_ {
        self.values.iter().enumerate().map(move |(i, &e)| {
            (
                Period::starting_at(self.start + self.step * i as i64, self.step),
                e,
            )
        })
    }

    /// Total energy across all slots.
    pub fn total(&self) -> Energy {
        self.values.iter().copied().sum()
    }

    /// The series' slot grid — the handle the alignment rules in
    /// [`iriscast_units::align`] operate on.
    pub fn grid(&self) -> TimeGrid {
        TimeGrid::new(self.start, self.step, self.values.len())
            .expect("series invariants guarantee a valid grid")
    }

    /// The same slot energies re-anchored to start at `start` — used to
    /// replay a measured load profile against another window's grid data.
    pub fn rebased(&self, start: Timestamp) -> EnergySeries {
        EnergySeries {
            start,
            step: self.step,
            values: self.values.clone(),
        }
    }

    /// Resamples to `new_step`, conserving energy exactly: coarsening
    /// sums whole windows, refinement splits each slot evenly. The
    /// covered period must divide evenly into `new_step` windows and the
    /// steps must be whole multiples of each other; anything else is a
    /// [`UnitsError::GridMismatch`].
    pub fn resample(&self, new_step: SimDuration) -> Result<EnergySeries, UnitsError> {
        let target = self.grid().resampled(new_step)?;
        Ok(EnergySeries {
            start: self.start,
            step: new_step,
            values: self.project_onto(&target)?,
        })
    }

    /// Projects the slot energies onto an arbitrary aligned grid
    /// (sum/split semantics — the projected series carries the same
    /// joules). Alignment rules are enforced by
    /// [`TimeGrid::project_onto`].
    pub fn project_onto(&self, target: &TimeGrid) -> Result<Vec<Energy>, UnitsError> {
        let plan = self.grid().project_onto(target)?;
        let raw: Vec<f64> = self.values.iter().map(|e| e.joules()).collect();
        Ok(plan
            .apply_amount(&raw)?
            .into_iter()
            .map(Energy::from_joules)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(watts: &[f64]) -> PowerSeries {
        PowerSeries::from_watts(Timestamp::EPOCH, SimDuration::from_secs(30), watts.to_vec())
    }

    #[test]
    fn construction_and_accessors() {
        let s = series(&[100.0, 200.0, 300.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.period().duration().as_secs(), 90);
        assert_eq!(s.get(1), Some(Power::from_watts(200.0)));
        assert_eq!(s.get(5), None);
        assert_eq!(s.valid_fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_rejected() {
        let _ = PowerSeries::from_watts(Timestamp::EPOCH, SimDuration::from_secs(30), vec![]);
    }

    #[test]
    fn constant_power_integrates_exactly() {
        // 1 kW for one hour (120 samples at 30 s) = 1 kWh.
        let s = series(&vec![1_000.0; 120]);
        let e = s.integrate(GapPolicy::Zero);
        assert!((e.kilowatt_hours() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trapezoid_vs_left_riemann_on_ramp() {
        // Linear ramp 0..=100 W: trapezoid gives the exact mean of the
        // continuous ramp sampled at the endpoints.
        let watts: Vec<f64> = (0..=100).map(f64::from).collect();
        let s = series(&watts);
        let left = s.integrate(GapPolicy::Zero).joules();
        let trap = s.integrate_trapezoid(GapPolicy::Zero).joules();
        // Left Riemann counts the final sample for a full step; trapezoid
        // halves both endpoints.
        assert!(left > trap);
        assert!((left - trap - 50.0 * 30.0).abs() < 1e-9);
    }

    #[test]
    fn single_sample_integration() {
        let s = series(&[500.0]);
        assert!((s.integrate(GapPolicy::Zero).joules() - 500.0 * 30.0).abs() < 1e-9);
        assert!((s.integrate_trapezoid(GapPolicy::Zero).joules() - 500.0 * 30.0).abs() < 1e-9);
    }

    #[test]
    fn gap_policies() {
        let s = series(&[100.0, f64::NAN, f64::NAN, 400.0]);
        assert_eq!(s.valid_fraction(), 0.5);

        let zero = s.fill_gaps(GapPolicy::Zero);
        assert_eq!(zero.watts(), &[100.0, 0.0, 0.0, 400.0]);

        let hold = s.fill_gaps(GapPolicy::HoldLast);
        assert_eq!(hold.watts(), &[100.0, 100.0, 100.0, 400.0]);

        let lerp = s.fill_gaps(GapPolicy::Interpolate);
        assert_eq!(lerp.watts(), &[100.0, 200.0, 300.0, 400.0]);
    }

    #[test]
    fn leading_and_trailing_gaps() {
        let s = series(&[f64::NAN, 100.0, f64::NAN]);
        let hold = s.fill_gaps(GapPolicy::HoldLast);
        assert_eq!(hold.watts(), &[100.0, 100.0, 100.0]);
        let lerp = s.fill_gaps(GapPolicy::Interpolate);
        assert_eq!(lerp.watts(), &[100.0, 100.0, 100.0]);
    }

    #[test]
    fn all_gaps_fill_to_zero() {
        let s = series(&[f64::NAN, f64::NAN]);
        for policy in [GapPolicy::Zero, GapPolicy::HoldLast, GapPolicy::Interpolate] {
            let filled = s.fill_gaps(policy);
            assert_eq!(filled.watts(), &[0.0, 0.0], "{policy:?}");
        }
        assert_eq!(s.mean_power(), None);
    }

    #[test]
    fn lenient_addition() {
        let mut a = series(&[100.0, f64::NAN, 300.0, f64::NAN]);
        let b = series(&[10.0, 20.0, f64::NAN, f64::NAN]);
        a.add_assign_lenient(&b);
        assert_eq!(a.watts()[0], 110.0);
        assert_eq!(a.watts()[1], 20.0);
        assert_eq!(a.watts()[2], 300.0);
        assert!(a.watts()[3].is_nan());
    }

    #[test]
    #[should_panic(expected = "grids differ")]
    fn lenient_addition_rejects_mismatched_grids() {
        let mut a = series(&[1.0, 2.0]);
        let b = series(&[1.0, 2.0, 3.0]);
        a.add_assign_lenient(&b);
    }

    #[test]
    fn scaling() {
        let mut s = series(&[100.0, f64::NAN, 200.0]);
        s.scale(0.5);
        assert_eq!(s.watts()[0], 50.0);
        assert!(s.watts()[1].is_nan());
        assert_eq!(s.watts()[2], 100.0);
    }

    #[test]
    fn energy_series_aggregation() {
        // 1 kW constant over one hour, rolled into 30-minute slots.
        let s = series(&vec![1_000.0; 120]);
        let es = s.to_energy_series(SimDuration::SETTLEMENT_PERIOD, GapPolicy::Zero);
        assert_eq!(es.len(), 2);
        for (_, e) in es.iter() {
            assert!((e.kilowatt_hours() - 0.5).abs() < 1e-12);
        }
        assert!((es.total().kilowatt_hours() - 1.0).abs() < 1e-12);
        // Totals match direct integration.
        assert!((es.total().joules() - s.integrate(GapPolicy::Zero).joules()).abs() < 1e-6);
    }

    #[test]
    fn energy_series_partial_final_slot() {
        // 90 samples = 45 min: second slot has only 15 min of samples.
        let s = series(&vec![1_000.0; 90]);
        let es = s.to_energy_series(SimDuration::SETTLEMENT_PERIOD, GapPolicy::Zero);
        assert_eq!(es.len(), 2);
        assert!((es.values()[0].kilowatt_hours() - 0.5).abs() < 1e-12);
        assert!((es.values()[1].kilowatt_hours() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "multiple of the sampling step")]
    fn energy_series_rejects_misaligned_window() {
        let s = series(&[1.0, 2.0]);
        let _ = s.to_energy_series(SimDuration::from_secs(45), GapPolicy::Zero);
    }

    #[test]
    fn mean_power_ignores_gaps() {
        let s = series(&[100.0, f64::NAN, 300.0]);
        assert_eq!(s.mean_power(), Some(Power::from_watts(200.0)));
    }

    #[test]
    fn resample_averages_windows() {
        let s = series(&[100.0, 200.0, 300.0, 400.0, 500.0]);
        let r = s.resample(SimDuration::from_secs(60));
        assert_eq!(r.step(), SimDuration::from_secs(60));
        assert_eq!(r.watts(), &[150.0, 350.0, 500.0]); // final window partial

        // Energy is conserved exactly for full windows and within the
        // partial-window approximation overall.
        let full = s.integrate(GapPolicy::Zero).joules();
        let coarse = r.integrate(GapPolicy::Zero).joules();
        // The final sample now holds for 60 s instead of 30 s.
        assert!((coarse - full - 500.0 * 30.0).abs() < 1e-9);
    }

    #[test]
    fn resample_handles_gaps() {
        let s = series(&[100.0, f64::NAN, f64::NAN, f64::NAN]);
        let r = s.resample(SimDuration::from_secs(60));
        assert_eq!(r.watts()[0], 100.0); // partial window averages valid only
        assert!(r.watts()[1].is_nan()); // all-missing window stays missing
    }

    #[test]
    #[should_panic(expected = "multiple of the current step")]
    fn resample_rejects_misaligned_step() {
        let _ = series(&[1.0]).resample(SimDuration::from_secs(45));
    }

    #[test]
    fn csv_export() {
        let s = series(&[100.0, f64::NAN, 300.5]);
        let csv = s.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "seconds,watts");
        assert_eq!(lines[1], "0,100");
        assert_eq!(lines[2], "30,");
        assert_eq!(lines[3], "60,300.5");
    }

    #[test]
    fn energy_series_grid_rebase_and_resample() {
        let s = series(&vec![1_000.0; 120]); // 1 kW for an hour
        let es = s.to_energy_series(SimDuration::SETTLEMENT_PERIOD, GapPolicy::Zero);
        let g = es.grid();
        assert_eq!(g.len(), 2);
        assert_eq!(g.step(), SimDuration::SETTLEMENT_PERIOD);

        let moved = es.rebased(Timestamp::from_days(2));
        assert_eq!(moved.start(), Timestamp::from_days(2));
        assert_eq!(moved.values(), es.values());

        // Coarsen: sums. Refine: even split. Totals conserved.
        let hourly = es.resample(SimDuration::HOUR).unwrap();
        assert_eq!(hourly.len(), 1);
        assert!((hourly.values()[0].kilowatt_hours() - 1.0).abs() < 1e-12);
        let fine = es.resample(SimDuration::from_minutes(10)).unwrap();
        assert_eq!(fine.len(), 6);
        for v in fine.values() {
            assert!((v.kilowatt_hours() - 1.0 / 6.0).abs() < 1e-12);
        }
        assert!((fine.total().joules() - es.total().joules()).abs() < 1e-9);
        // Misaligned steps are typed errors, not panics.
        assert!(es.resample(SimDuration::from_secs(45 * 60)).is_err());
        assert!(es.resample(SimDuration::ZERO).is_err());
    }

    #[test]
    fn energy_series_projection_is_exact() {
        use iriscast_units::TimeGrid;
        let s = series(&vec![2_000.0; 240]); // 2 kW for two hours
        let es = s.to_energy_series(SimDuration::SETTLEMENT_PERIOD, GapPolicy::Zero);
        // Project the middle hour onto its own grid slice.
        let target = TimeGrid::new(
            Timestamp::from_secs(1_800),
            SimDuration::SETTLEMENT_PERIOD,
            2,
        )
        .unwrap();
        let projected = es.project_onto(&target).unwrap();
        assert_eq!(projected.len(), 2);
        assert!((projected[0].kilowatt_hours() - 1.0).abs() < 1e-12);
        // Coverage violations surface as errors.
        let outside = TimeGrid::new(
            Timestamp::from_secs(-1_800),
            SimDuration::SETTLEMENT_PERIOD,
            2,
        )
        .unwrap();
        assert!(es.project_onto(&outside).is_err());
    }

    #[test]
    fn zeros_helper() {
        let s = PowerSeries::zeros(Period::snapshot_24h(), SimDuration::from_secs(30));
        assert_eq!(s.len(), 2_880);
        assert_eq!(s.integrate(GapPolicy::Zero), Energy::ZERO);
    }
}
