//! Property-based tests for the telemetry substrate's invariants.

use iriscast_telemetry::{
    decode_register_readings, CollectScratch, CumulativeRegister, FillBackend, FlatUtilization,
    GapPolicy, MeterErrorModel, NodeGroupTelemetry, NodePowerModel, PowerSeries, SiteCollector,
    SiteTelemetryConfig, SyntheticUtilization,
};
use iriscast_units::{Energy, Period, Power, SimDuration, Timestamp};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn watt_sample() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => 0.0..2_000.0f64,
        1 => Just(f64::NAN), // ~11% gaps
    ]
}

proptest! {
    /// Integration is bounded by min·T ≤ ∫ ≤ max·T for gap-free series.
    #[test]
    fn integration_bounds(watts in prop::collection::vec(0.0..2_000.0f64, 1..500)) {
        let n = watts.len();
        let lo = watts.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = watts.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let s = PowerSeries::from_watts(Timestamp::EPOCH, SimDuration::from_secs(30), watts);
        let e = s.integrate(GapPolicy::Zero).joules();
        let t = (n as f64) * 30.0;
        prop_assert!(e >= lo * t - 1e-6);
        prop_assert!(e <= hi * t + 1e-6);
        // The trapezoid rule spans n−1 intervals (single samples hold for
        // one step), so its envelope is min/max over that shorter span.
        let trap = s.integrate_trapezoid(GapPolicy::Zero).joules();
        let t_trap = if n >= 2 { (n as f64 - 1.0) * 30.0 } else { 30.0 };
        prop_assert!(trap >= lo * t_trap - 1e-6 && trap <= hi * t_trap + 1e-6);
    }

    /// Gap filling is idempotent and never produces NaN.
    #[test]
    fn gap_fill_idempotent(watts in prop::collection::vec(watt_sample(), 1..300)) {
        let s = PowerSeries::from_watts(Timestamp::EPOCH, SimDuration::from_secs(30), watts);
        for policy in [GapPolicy::Zero, GapPolicy::HoldLast, GapPolicy::Interpolate] {
            let once = s.fill_gaps(policy);
            prop_assert!(once.watts().iter().all(|w| !w.is_nan()), "{policy:?} left NaN");
            let twice = once.fill_gaps(policy);
            prop_assert_eq!(once.watts(), twice.watts());
        }
    }

    /// Interpolated values always lie within the neighbouring valid range.
    #[test]
    fn interpolation_within_hull(watts in prop::collection::vec(watt_sample(), 2..300)) {
        let s = PowerSeries::from_watts(Timestamp::EPOCH, SimDuration::from_secs(30), watts.clone());
        let valid: Vec<f64> = watts.iter().cloned().filter(|w| !w.is_nan()).collect();
        prop_assume!(!valid.is_empty());
        let lo = valid.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = valid.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let filled = s.fill_gaps(GapPolicy::Interpolate);
        for &w in filled.watts() {
            prop_assert!(w >= lo - 1e-9 && w <= hi + 1e-9, "{w} outside [{lo}, {hi}]");
        }
    }

    /// Energy-series roll-up conserves the integral exactly for any window
    /// that divides into the step.
    #[test]
    fn energy_rollup_conserves(
        watts in prop::collection::vec(0.0..2_000.0f64, 1..400),
        per in 1usize..20,
    ) {
        let step = SimDuration::from_secs(30);
        let s = PowerSeries::from_watts(Timestamp::EPOCH, step, watts);
        let window = SimDuration::from_secs(30 * per as i64);
        let es = s.to_energy_series(window, GapPolicy::Zero);
        let direct = s.integrate(GapPolicy::Zero);
        prop_assert!((es.total().joules() - direct.joules()).abs() < 1e-6);
    }

    /// A cumulative register round-trips energy within resolution per read.
    #[test]
    fn register_round_trip(
        initial in 0.0..900_000.0f64,
        increments in prop::collection::vec(0.0..100.0f64, 1..200),
    ) {
        let mut reg = CumulativeRegister::new(initial);
        let mut readings = vec![reg.display()];
        let mut truth = 0.0;
        for kwh in &increments {
            readings.push(reg.accumulate(Energy::from_kilowatt_hours(*kwh)));
            truth += kwh;
        }
        let decoded = decode_register_readings(&readings, 1_000_000.0).kilowatt_hours();
        // Truncation loses at most the resolution (1 kWh) overall, since
        // the register itself is exact and only the display truncates.
        prop_assert!((decoded - truth).abs() <= 1.0 + 1e-9, "decoded {decoded} truth {truth}");
    }

    /// Meter observation with a pure-gain model is exactly linear.
    #[test]
    fn meter_gain_linearity(truth_w in 0.0..5_000.0f64, gain in 0.5..1.5f64) {
        let m = MeterErrorModel { gain, ..MeterErrorModel::IDEAL };
        let mut rng = StdRng::seed_from_u64(1);
        let r = m.observe(Power::from_watts(truth_w), &mut rng).unwrap();
        prop_assert!((r.watts() - truth_w * gain).abs() < 1e-9);
    }

    /// The node power model is monotone in utilisation for any valid
    /// envelope, and instrument views preserve that order.
    #[test]
    fn power_model_monotone(
        idle in 10.0..400.0f64,
        dynamic in 0.0..600.0f64,
        u1 in 0.0..1.0f64,
        u2 in 0.0..1.0f64,
    ) {
        let m = NodePowerModel::linear(
            Power::from_watts(idle),
            Power::from_watts(idle + dynamic),
        );
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        prop_assert!(m.wall_power(lo) <= m.wall_power(hi));
        prop_assert!(m.ipmi_visible(m.wall_power(lo)) <= m.ipmi_visible(m.wall_power(hi)));
        prop_assert!(m.rapl_visible(m.wall_power(lo)) <= m.rapl_visible(m.wall_power(hi)));
        // Views never exceed the wall truth.
        let wall = m.wall_power(hi);
        prop_assert!(m.ipmi_visible(wall) <= wall);
        prop_assert!(m.rapl_visible(wall) <= m.ipmi_visible(wall));
    }

    /// Calibration inverse: solving for a power inside the envelope and
    /// evaluating lands back on the target.
    #[test]
    fn utilisation_solver_inverse(
        idle in 10.0..400.0f64,
        dynamic in 1.0..600.0f64,
        frac in 0.0..1.0f64,
    ) {
        let m = NodePowerModel::linear(
            Power::from_watts(idle),
            Power::from_watts(idle + dynamic),
        );
        let target = Power::from_watts(idle + dynamic * frac);
        let u = m.utilisation_for_power(target);
        prop_assert!((m.wall_power(u).watts() - target.watts()).abs() < 1e-6);
    }

    /// The scratch-arena collect (`collect_with` + `recycle`) is
    /// bit-identical to a fresh `collect` for arbitrary fleet sizes,
    /// utilisations and seeds, at 1 and 16 workers — reusing buffers
    /// changes provenance, never arithmetic or fold order.
    #[test]
    fn scratch_collect_equals_fresh_collect(
        nodes in 1u32..220,
        util in 0.0..1.0f64,
        seed in 0u64..1_000,
    ) {
        let mut cfg = SiteTelemetryConfig::new(
            "PROP",
            vec![NodeGroupTelemetry {
                label: "compute".into(),
                count: nodes,
                power_model: NodePowerModel::linear(
                    Power::from_watts(100.0),
                    Power::from_watts(500.0),
                ),
            }],
            seed,
        );
        cfg.sample_step = SimDuration::from_secs(1_800);
        let collector = SiteCollector::new(cfg);
        let source = FlatUtilization(util);
        let day = Period::snapshot_24h();
        let mut scratch = CollectScratch::new();
        for workers in [1usize, 16] {
            let fresh = collector.collect(day, &source, workers).unwrap();
            let warm = collector
                .collect_with(day, &source, workers, &mut scratch)
                .unwrap();
            prop_assert_eq!(&warm, &fresh, "workers = {}", workers);
            scratch.recycle(warm);
        }
    }

    /// Pool-backed collects are bit-identical to spawn-backed collects
    /// at 1 and 16 workers for arbitrary fleets, loads and seeds: the
    /// persistent worker pool changes *where* chunks execute, never the
    /// chunking, arithmetic or fold order.
    #[test]
    fn pool_collect_equals_spawn_collect(
        nodes in 1u32..220,
        mean in 0.0..1.0f64,
        seed in 0u64..1_000,
    ) {
        let mut cfg = SiteTelemetryConfig::new(
            "POOL",
            vec![NodeGroupTelemetry {
                label: "compute".into(),
                count: nodes,
                power_model: NodePowerModel::linear(
                    Power::from_watts(100.0),
                    Power::from_watts(500.0),
                ),
            }],
            seed,
        );
        cfg.sample_step = SimDuration::from_secs(1_800);
        let collector = SiteCollector::new(cfg);
        let source = SyntheticUtilization::new(mean, 0.1, 0.03, seed ^ 0xA5A5);
        let day = Period::snapshot_24h();
        let mut scratch_pool = CollectScratch::new();
        let mut scratch_spawn = CollectScratch::new();
        for workers in [1usize, 16] {
            let pooled = collector
                .collect_with_backend(day, &source, workers, &mut scratch_pool, FillBackend::Pool)
                .unwrap();
            let spawned = collector
                .collect_with_backend(day, &source, workers, &mut scratch_spawn, FillBackend::Spawn)
                .unwrap();
            prop_assert_eq!(&pooled, &spawned, "workers = {}", workers);
            scratch_pool.recycle(pooled);
            scratch_spawn.recycle(spawned);
        }
    }
}
