//! Time-axis alignment between regularly sampled series.
//!
//! Time-resolved assessment convolves two series sampled on *different*
//! grids — telemetry energy (often 30-second power integrated to slots)
//! and grid carbon intensity (half-hourly settlement periods). Convolving
//! them interval-by-interval is only exact when every slot of one grid
//! tiles exactly onto slots of the other. This module owns those rules:
//!
//! * [`TimeGrid`] describes a regular sampling grid — `len` slots of
//!   width `step` starting at `start` — without carrying the values;
//! * [`TimeGrid::project_onto`] decides whether, and how, values sampled
//!   on one grid can be re-expressed on another: same-step copy, exact
//!   whole-multiple coarsening, or exact whole-multiple refinement;
//! * [`GridProjection::apply_rate`] / [`GridProjection::apply_amount`]
//!   carry the values across, preserving rate semantics (intensity,
//!   power: mean/copy) or amount semantics (energy: sum/split).
//!
//! Misalignments — a phase offset that is not a whole number of slots,
//! steps that are not integer multiples, a target window the source does
//! not cover — are reported as [`UnitsError::GridMismatch`] rather than
//! silently interpolated. Callers that want approximate alignment must
//! resample explicitly first.
//!
//! ```
//! use iriscast_units::{SimDuration, TimeGrid, Timestamp};
//!
//! // Half-hourly intensity covering a day…
//! let ci = TimeGrid::new(Timestamp::EPOCH, SimDuration::SETTLEMENT_PERIOD, 48).unwrap();
//! // …projected onto hourly energy slots for the same day.
//! let energy = TimeGrid::new(Timestamp::EPOCH, SimDuration::HOUR, 24).unwrap();
//! let plan = ci.project_onto(&energy).unwrap();
//! // Each hourly value is the mean of two half-hourly rates.
//! let values: Vec<f64> = (0..48).map(|i| 100.0 + i as f64).collect();
//! let hourly = plan.apply_rate(&values).unwrap();
//! assert_eq!(hourly.len(), 24);
//! assert_eq!(hourly[0], 100.5);
//! ```

use crate::error::UnitsError;
use crate::time::{Period, SimDuration, Timestamp};
use serde::{Deserialize, Serialize};

/// A regular sampling grid: `len` slots of width `step`, the `i`-th slot
/// covering `[start + i·step, start + (i+1)·step)`.
///
/// A grid describes *where* samples live; the values themselves stay in
/// the owning series type (`IntensitySeries`, `EnergySeries`, …).
/// Construction rejects non-positive steps and empty grids, so every
/// `TimeGrid` covers a non-empty period.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeGrid {
    start: Timestamp,
    step: SimDuration,
    len: usize,
}

impl TimeGrid {
    /// Builds a grid, rejecting a non-positive step or zero length.
    pub fn new(start: Timestamp, step: SimDuration, len: usize) -> Result<Self, UnitsError> {
        if step.as_secs() <= 0 {
            return Err(UnitsError::GridMismatch {
                reason: "grid step must be positive",
            });
        }
        if len == 0 {
            return Err(UnitsError::GridMismatch {
                reason: "grid must contain at least one slot",
            });
        }
        Ok(TimeGrid { start, step, len })
    }

    /// First slot start.
    pub const fn start(&self) -> Timestamp {
        self.start
    }

    /// Slot width.
    pub const fn step(&self) -> SimDuration {
        self.step
    }

    /// Number of slots (always ≥ 1).
    pub const fn len(&self) -> usize {
        self.len
    }

    /// Always `false`: empty grids are rejected at construction.
    pub const fn is_empty(&self) -> bool {
        false
    }

    /// End of the final slot (exclusive).
    pub fn end(&self) -> Timestamp {
        self.start + self.step * self.len as i64
    }

    /// The covered period `[start, end)`.
    pub fn period(&self) -> Period {
        Period::new(self.start, self.end())
    }

    /// The `i`-th slot as a half-open period, if in range.
    pub fn slot(&self, i: usize) -> Option<Period> {
        if i >= self.len {
            return None;
        }
        Some(Period::starting_at(
            self.start + self.step * i as i64,
            self.step,
        ))
    }

    /// The same covered period re-gridded at `new_step`: validates that
    /// the step is positive and that the period divides into a whole
    /// number of new slots (the shared precondition of every series
    /// `resample`). Step-multiple and phase rules are then enforced by
    /// [`TimeGrid::project_onto`] when values are carried across.
    pub fn resampled(&self, new_step: SimDuration) -> Result<TimeGrid, UnitsError> {
        if new_step.as_secs() <= 0 {
            return Err(UnitsError::GridMismatch {
                reason: "grid step must be positive",
            });
        }
        let total = self.step.as_secs() * self.len as i64;
        if total % new_step.as_secs() != 0 {
            return Err(UnitsError::GridMismatch {
                reason: "covered period is not a whole number of new slots",
            });
        }
        TimeGrid::new(self.start, new_step, (total / new_step.as_secs()) as usize)
    }

    /// Index of the slot containing `t`, or `None` outside the grid.
    pub fn index_of(&self, t: Timestamp) -> Option<usize> {
        if t < self.start {
            return None;
        }
        let idx = ((t - self.start).as_secs() / self.step.as_secs()) as usize;
        if idx < self.len {
            Some(idx)
        } else {
            None
        }
    }

    /// Plans how values sampled on `self` (the *source*) can be read off
    /// on `target`. Exactness rules, checked in order:
    ///
    /// 1. the target period must lie inside the source period (no
    ///    extrapolation);
    /// 2. one step must be a whole multiple of the other (slots must
    ///    tile, never straddle);
    /// 3. the offset between the grids must be a whole number of the
    ///    finer step (phases must agree).
    ///
    /// Any violation is a [`UnitsError::GridMismatch`].
    pub fn project_onto(&self, target: &TimeGrid) -> Result<GridProjection, UnitsError> {
        if target.start < self.start {
            return Err(UnitsError::GridMismatch {
                reason: "target grid starts before the source series",
            });
        }
        if target.end() > self.end() {
            return Err(UnitsError::GridMismatch {
                reason: "target grid extends past the source series",
            });
        }
        let s = self.step.as_secs();
        let t = target.step.as_secs();
        let offset_secs = (target.start - self.start).as_secs();
        let kind = if t == s {
            if offset_secs % s != 0 {
                return Err(UnitsError::GridMismatch {
                    reason: "grid phases differ by a fraction of a slot",
                });
            }
            ProjectionKind::Copy {
                offset: (offset_secs / s) as usize,
            }
        } else if t > s {
            // Coarsening: each target slot covers `factor` source slots.
            if t % s != 0 {
                return Err(UnitsError::GridMismatch {
                    reason: "target step is not a whole multiple of the source step",
                });
            }
            if offset_secs % s != 0 {
                return Err(UnitsError::GridMismatch {
                    reason: "grid phases differ by a fraction of a slot",
                });
            }
            ProjectionKind::Aggregate {
                offset: (offset_secs / s) as usize,
                factor: (t / s) as usize,
            }
        } else {
            // Refinement: each target slot falls inside one source slot.
            if s % t != 0 {
                return Err(UnitsError::GridMismatch {
                    reason: "source step is not a whole multiple of the target step",
                });
            }
            if offset_secs % t != 0 {
                return Err(UnitsError::GridMismatch {
                    reason: "grid phases differ by a fraction of a slot",
                });
            }
            ProjectionKind::Replicate {
                offset: (offset_secs / t) as usize,
                factor: (s / t) as usize,
            }
        };
        Ok(GridProjection {
            kind,
            source_len: self.len,
            target_len: target.len,
        })
    }
}

/// How source slots map onto target slots (see [`TimeGrid::project_onto`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum ProjectionKind {
    /// Equal steps: target slot `i` reads source slot `offset + i`.
    Copy { offset: usize },
    /// Target coarser: target slot `i` covers source slots
    /// `[offset + i·factor, offset + (i+1)·factor)`.
    Aggregate { offset: usize, factor: usize },
    /// Target finer: target slot `i` lies inside source slot
    /// `(offset + i) / factor`.
    Replicate { offset: usize, factor: usize },
}

/// A validated plan for carrying values from one [`TimeGrid`] to another.
///
/// The two `apply` methods differ in what they preserve:
///
/// * [`GridProjection::apply_rate`] treats values as *rates* (carbon
///   intensity, power): coarsening takes the mean, refinement repeats the
///   value. The time-weighted average over any aligned window is
///   unchanged.
/// * [`GridProjection::apply_amount`] treats values as *amounts* (energy,
///   carbon mass): coarsening sums, refinement splits evenly. The total
///   over the projected window is unchanged.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GridProjection {
    kind: ProjectionKind,
    source_len: usize,
    target_len: usize,
}

impl GridProjection {
    /// Number of target slots this plan produces.
    pub const fn target_len(&self) -> usize {
        self.target_len
    }

    /// Half-open range of source slots feeding target slot `i`.
    fn source_range(&self, i: usize) -> (usize, usize) {
        match self.kind {
            ProjectionKind::Copy { offset } => (offset + i, offset + i + 1),
            ProjectionKind::Aggregate { offset, factor } => {
                (offset + i * factor, offset + (i + 1) * factor)
            }
            ProjectionKind::Replicate { offset, factor } => {
                let s = (offset + i) / factor;
                (s, s + 1)
            }
        }
    }

    fn check_source(&self, source: &[f64]) -> Result<(), UnitsError> {
        if source.len() != self.source_len {
            return Err(UnitsError::GridMismatch {
                reason: "value slice does not match the grid the plan was built for",
            });
        }
        Ok(())
    }

    /// Projects rate-like values (mean when coarsening, copy when
    /// refining). `source` must have exactly the planned source length.
    pub fn apply_rate(&self, source: &[f64]) -> Result<Vec<f64>, UnitsError> {
        self.check_source(source)?;
        let mut out = Vec::with_capacity(self.target_len);
        for i in 0..self.target_len {
            let (lo, hi) = self.source_range(i);
            let window = &source[lo..hi];
            out.push(window.iter().sum::<f64>() / window.len() as f64);
        }
        Ok(out)
    }

    /// Projects amount-like values (sum when coarsening, even split when
    /// refining). `source` must have exactly the planned source length.
    pub fn apply_amount(&self, source: &[f64]) -> Result<Vec<f64>, UnitsError> {
        self.check_source(source)?;
        let mut out = Vec::with_capacity(self.target_len);
        for i in 0..self.target_len {
            match self.kind {
                ProjectionKind::Copy { .. } | ProjectionKind::Aggregate { .. } => {
                    let (lo, hi) = self.source_range(i);
                    out.push(source[lo..hi].iter().sum::<f64>());
                }
                ProjectionKind::Replicate { factor, .. } => {
                    let (lo, _) = self.source_range(i);
                    out.push(source[lo] / factor as f64);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(start_secs: i64, step_secs: i64, len: usize) -> TimeGrid {
        TimeGrid::new(
            Timestamp::from_secs(start_secs),
            SimDuration::from_secs(step_secs),
            len,
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(TimeGrid::new(Timestamp::EPOCH, SimDuration::ZERO, 4).is_err());
        assert!(TimeGrid::new(Timestamp::EPOCH, SimDuration::from_secs(-5), 4).is_err());
        assert!(TimeGrid::new(Timestamp::EPOCH, SimDuration::HOUR, 0).is_err());
        let g = grid(0, 1_800, 48);
        assert_eq!(g.len(), 48);
        assert!(!g.is_empty());
        assert_eq!(g.end(), Timestamp::from_days(1));
        assert_eq!(g.period().duration(), SimDuration::DAY);
    }

    #[test]
    fn slot_and_index_round_trip() {
        let g = grid(3_600, 1_800, 4);
        assert_eq!(g.slot(0).unwrap().start(), Timestamp::from_secs(3_600));
        assert_eq!(g.slot(3).unwrap().end(), g.end());
        assert!(g.slot(4).is_none());
        assert_eq!(g.index_of(Timestamp::from_secs(3_600)), Some(0));
        assert_eq!(g.index_of(Timestamp::from_secs(5_399)), Some(0));
        assert_eq!(g.index_of(Timestamp::from_secs(5_400)), Some(1));
        assert_eq!(g.index_of(Timestamp::from_secs(3_599)), None);
        assert_eq!(g.index_of(g.end()), None);
    }

    #[test]
    fn resampled_validates_step_and_period() {
        let g = grid(0, 1_800, 48); // one day of settlement periods
        let hourly = g.resampled(SimDuration::HOUR).unwrap();
        assert_eq!(hourly.start(), g.start());
        assert_eq!(hourly.len(), 24);
        assert_eq!(hourly.period(), g.period());
        let fine = g.resampled(SimDuration::from_minutes(10)).unwrap();
        assert_eq!(fine.len(), 144);
        assert!(g.resampled(SimDuration::ZERO).is_err());
        assert!(g.resampled(SimDuration::from_secs(-60)).is_err());
        // 7 hours does not divide the 24-hour period.
        assert!(g.resampled(SimDuration::from_hours(7.0)).is_err());
    }

    #[test]
    fn copy_projection_with_offset() {
        let src = grid(0, 1_800, 48);
        let dst = grid(3_600, 1_800, 4);
        let plan = src.project_onto(&dst).unwrap();
        let values: Vec<f64> = (0..48).map(f64::from).collect();
        assert_eq!(plan.apply_rate(&values).unwrap(), vec![2.0, 3.0, 4.0, 5.0]);
        assert_eq!(
            plan.apply_amount(&values).unwrap(),
            vec![2.0, 3.0, 4.0, 5.0]
        );
    }

    #[test]
    fn aggregate_projection_means_and_sums() {
        let src = grid(0, 1_800, 6);
        let dst = grid(1_800, 3_600, 2);
        let plan = src.project_onto(&dst).unwrap();
        let values = [10.0, 20.0, 40.0, 30.0, 50.0, 70.0];
        assert_eq!(plan.apply_rate(&values).unwrap(), vec![30.0, 40.0]);
        assert_eq!(plan.apply_amount(&values).unwrap(), vec![60.0, 80.0]);
    }

    #[test]
    fn replicate_projection_copies_and_splits() {
        let src = grid(0, 3_600, 2);
        let dst = grid(1_800, 1_800, 2);
        let plan = src.project_onto(&dst).unwrap();
        let values = [10.0, 30.0];
        // Slot 0 of the target is the second half of source slot 0; slot 1
        // is the first half of source slot 1.
        assert_eq!(plan.apply_rate(&values).unwrap(), vec![10.0, 30.0]);
        assert_eq!(plan.apply_amount(&values).unwrap(), vec![5.0, 15.0]);
    }

    #[test]
    fn coverage_is_enforced() {
        let src = grid(0, 1_800, 4);
        for bad in [
            grid(-1_800, 1_800, 4),
            grid(0, 1_800, 5),
            grid(5_400, 1_800, 2),
        ] {
            let err = src.project_onto(&bad);
            if bad.end() > src.end() || bad.start() < src.start() {
                assert!(err.is_err(), "{bad:?}");
            }
        }
        // Exact cover is fine.
        assert!(src.project_onto(&src).is_ok());
    }

    #[test]
    fn phase_and_step_mismatches_are_typed_errors() {
        let src = grid(0, 1_800, 48);
        // Fractional-slot phase offset.
        let skew = grid(900, 1_800, 4);
        assert!(matches!(
            src.project_onto(&skew),
            Err(UnitsError::GridMismatch { .. })
        ));
        // Non-multiple steps (45 min vs 30 min).
        let odd = grid(0, 2_700, 4);
        assert!(matches!(
            src.project_onto(&odd),
            Err(UnitsError::GridMismatch { .. })
        ));
        // Refinement with misaligned fine phase.
        let fine = grid(600, 600, 6);
        assert!(src.project_onto(&fine).is_ok()); // 600 divides 1800, phase aligned
        let fine_skew = grid(400, 600, 6);
        assert!(src.project_onto(&fine_skew).is_err());
    }

    #[test]
    fn apply_rejects_wrong_length_slices() {
        let src = grid(0, 1_800, 4);
        let plan = src.project_onto(&src).unwrap();
        assert!(plan.apply_rate(&[1.0, 2.0]).is_err());
        assert!(plan.apply_amount(&[1.0, 2.0, 3.0, 4.0, 5.0]).is_err());
        assert_eq!(plan.target_len(), 4);
    }

    #[test]
    fn amount_projection_conserves_totals() {
        let src = grid(0, 1_800, 48);
        let values: Vec<f64> = (0..48).map(|i| 10.0 + f64::from(i)).collect();
        let total: f64 = values.iter().sum();
        for (step, len) in [(3_600, 24), (900, 96), (1_800, 48)] {
            let dst = grid(0, step, len);
            let projected = src
                .project_onto(&dst)
                .unwrap()
                .apply_amount(&values)
                .unwrap();
            let sum: f64 = projected.iter().sum();
            assert!((sum - total).abs() < 1e-9, "step {step}");
        }
    }
}
