//! Carbon-dioxide-equivalent mass.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A mass of CO₂-equivalent emissions, stored internally in grams.
///
/// "Equivalent" because upstream factors (grid intensity, manufacturer LCA
/// sheets) already fold non-CO₂ greenhouse gases into a CO₂e figure; this
/// type does not distinguish gases.
#[derive(Copy, Clone, Debug, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct CarbonMass(f64);

impl CarbonMass {
    /// Zero emissions.
    pub const ZERO: CarbonMass = CarbonMass(0.0);

    /// Mass from grams of CO₂e.
    pub const fn from_grams(g: f64) -> Self {
        CarbonMass(g)
    }

    /// Mass from kilograms of CO₂e (the paper's reporting unit).
    pub fn from_kilograms(kg: f64) -> Self {
        CarbonMass(kg * 1e3)
    }

    /// Mass from (metric) tonnes of CO₂e.
    pub fn from_tonnes(t: f64) -> Self {
        CarbonMass(t * 1e6)
    }

    /// Value in grams.
    pub const fn grams(self) -> f64 {
        self.0
    }

    /// Value in kilograms.
    pub fn kilograms(self) -> f64 {
        self.0 / 1e3
    }

    /// Value in tonnes.
    pub fn tonnes(self) -> f64 {
        self.0 / 1e6
    }

    /// `true` when the value is finite (not NaN/∞).
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Numerically smaller of two masses.
    pub fn min(self, other: CarbonMass) -> CarbonMass {
        CarbonMass(self.0.min(other.0))
    }

    /// Numerically larger of two masses.
    pub fn max(self, other: CarbonMass) -> CarbonMass {
        CarbonMass(self.0.max(other.0))
    }

    /// Total-order comparison (NaN sorts last).
    pub fn total_cmp(&self, other: &CarbonMass) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for CarbonMass {
    type Output = CarbonMass;
    fn add(self, rhs: Self) -> CarbonMass {
        CarbonMass(self.0 + rhs.0)
    }
}

impl Sub for CarbonMass {
    type Output = CarbonMass;
    fn sub(self, rhs: Self) -> CarbonMass {
        CarbonMass(self.0 - rhs.0)
    }
}

impl Neg for CarbonMass {
    type Output = CarbonMass;
    fn neg(self) -> CarbonMass {
        CarbonMass(-self.0)
    }
}

impl Mul<f64> for CarbonMass {
    type Output = CarbonMass;
    fn mul(self, rhs: f64) -> CarbonMass {
        CarbonMass(self.0 * rhs)
    }
}

impl Mul<CarbonMass> for f64 {
    type Output = CarbonMass;
    fn mul(self, rhs: CarbonMass) -> CarbonMass {
        CarbonMass(self * rhs.0)
    }
}

impl Div<f64> for CarbonMass {
    type Output = CarbonMass;
    fn div(self, rhs: f64) -> CarbonMass {
        CarbonMass(self.0 / rhs)
    }
}

/// Ratio of two carbon masses (dimensionless) — e.g. "embodied share of
/// total" or "how many flight-equivalents".
impl Div<CarbonMass> for CarbonMass {
    type Output = f64;
    fn div(self, rhs: CarbonMass) -> f64 {
        self.0 / rhs.0
    }
}

impl AddAssign for CarbonMass {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl SubAssign for CarbonMass {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl Sum for CarbonMass {
    fn sum<I: Iterator<Item = CarbonMass>>(iter: I) -> CarbonMass {
        CarbonMass(iter.map(|c| c.0).sum())
    }
}

impl<'a> Sum<&'a CarbonMass> for CarbonMass {
    fn sum<I: Iterator<Item = &'a CarbonMass>>(iter: I) -> CarbonMass {
        CarbonMass(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for CarbonMass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kg = self.kilograms().abs();
        if kg >= 1e3 {
            write!(f, "{:.2} tCO2e", self.tonnes())
        } else if kg >= 1.0 {
            write!(f, "{:.2} kgCO2e", self.kilograms())
        } else {
            write!(f, "{:.1} gCO2e", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let c = CarbonMass::from_kilograms(2.5);
        assert_eq!(c.grams(), 2_500.0);
        assert_eq!(c.tonnes(), 2.5e-3);
        assert_eq!(CarbonMass::from_tonnes(1.0).kilograms(), 1_000.0);
    }

    #[test]
    fn arithmetic_and_ratio() {
        let active = CarbonMass::from_kilograms(3_391.0);
        let embodied = CarbonMass::from_kilograms(526.0);
        let total = active + embodied;
        assert!((total.kilograms() - 3_917.0).abs() < 1e-9);
        // Embodied share of total in the paper's central scenario ≈ 13%.
        let share = embodied / total;
        assert!((share - 0.1343).abs() < 1e-3);
        assert_eq!(total - active, embodied);
        assert_eq!(embodied * 2.0, 2.0 * embodied);
        assert_eq!((embodied / 2.0).kilograms(), 263.0);
        assert_eq!((-embodied).kilograms(), -526.0);
    }

    #[test]
    fn flight_equivalence_from_paper() {
        // Paper §6: 92 kgCO2/passenger-hour × 24 h = 2,208 kg.
        let per_hour = CarbonMass::from_kilograms(92.0);
        let day = per_hour * 24.0;
        assert_eq!(day.kilograms(), 2_208.0);
        // "between 1 and 4 of these passenger journeys"
        let low_total = CarbonMass::from_kilograms(1_066.0 + 375.0);
        let high_total = CarbonMass::from_kilograms(9_302.0 + 2_409.0);
        assert!(low_total / day > 0.5 && low_total / day < 1.0);
        assert!(high_total / day > 4.0 && high_total / day < 6.0);
    }

    #[test]
    fn summation() {
        let parts = [
            CarbonMass::from_kilograms(1.0),
            CarbonMass::from_kilograms(2.0),
        ];
        let by_val: CarbonMass = parts.iter().copied().sum();
        let by_ref: CarbonMass = parts.iter().sum();
        assert_eq!(by_val, by_ref);
        assert_eq!(by_val.kilograms(), 3.0);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(
            CarbonMass::from_kilograms(5_814.0).to_string(),
            "5.81 tCO2e"
        );
        assert_eq!(CarbonMass::from_kilograms(92.0).to_string(), "92.00 kgCO2e");
        assert_eq!(CarbonMass::from_grams(430.0).to_string(), "430.0 gCO2e");
    }

    #[test]
    fn min_max() {
        let a = CarbonMass::from_grams(1.0);
        let b = CarbonMass::from_grams(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.total_cmp(&b), std::cmp::Ordering::Less);
    }
}
