//! Electrical energy.

use crate::{CarbonIntensity, CarbonMass, Power, SimDuration};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Number of joules in one kilowatt-hour.
pub const JOULES_PER_KWH: f64 = 3.6e6;

/// Electrical energy, stored internally in joules.
///
/// The paper reports energy in kWh; telemetry integrates power in W over
/// seconds, which lands naturally in joules. Keeping joules internally and
/// converting at the API edge avoids repeated divisions in hot loops.
#[derive(Copy, Clone, Debug, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Energy from joules.
    pub const fn from_joules(j: f64) -> Self {
        Energy(j)
    }

    /// Energy from watt-hours.
    pub fn from_watt_hours(wh: f64) -> Self {
        Energy(wh * 3_600.0)
    }

    /// Energy from kilowatt-hours (the paper's reporting unit).
    pub fn from_kilowatt_hours(kwh: f64) -> Self {
        Energy(kwh * JOULES_PER_KWH)
    }

    /// Energy from megawatt-hours.
    pub fn from_megawatt_hours(mwh: f64) -> Self {
        Energy(mwh * JOULES_PER_KWH * 1e3)
    }

    /// Value in joules.
    pub const fn joules(self) -> f64 {
        self.0
    }

    /// Value in watt-hours.
    pub fn watt_hours(self) -> f64 {
        self.0 / 3_600.0
    }

    /// Value in kilowatt-hours.
    pub fn kilowatt_hours(self) -> f64 {
        self.0 / JOULES_PER_KWH
    }

    /// Value in megawatt-hours.
    pub fn megawatt_hours(self) -> f64 {
        self.0 / (JOULES_PER_KWH * 1e3)
    }

    /// `true` when the value is finite (not NaN/∞).
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Numerically smaller of two energies.
    pub fn min(self, other: Energy) -> Energy {
        Energy(self.0.min(other.0))
    }

    /// Numerically larger of two energies.
    pub fn max(self, other: Energy) -> Energy {
        Energy(self.0.max(other.0))
    }

    /// Mean power over `span`: `E / Δt`. Panics on zero-length spans.
    pub fn mean_power_over(self, span: SimDuration) -> Power {
        assert!(
            span.as_secs() != 0,
            "cannot compute mean power over a zero-length span"
        );
        Power::from_watts(self.0 / span.as_secs() as f64)
    }

    /// Total-order comparison (NaN sorts last).
    pub fn total_cmp(&self, other: &Energy) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Self) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Self) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl Neg for Energy {
    type Output = Energy;
    fn neg(self) -> Energy {
        Energy(-self.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Mul<Energy> for f64 {
    type Output = Energy;
    fn mul(self, rhs: Energy) -> Energy {
        Energy(self * rhs.0)
    }
}

impl Div<f64> for Energy {
    type Output = Energy;
    fn div(self, rhs: f64) -> Energy {
        Energy(self.0 / rhs)
    }
}

/// Ratio of two energies (dimensionless).
impl Div<Energy> for Energy {
    type Output = f64;
    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}

/// Equation (3) of the paper: `Ca = E × CMe` — energy times the carbon
/// intensity of its supply gives the emitted carbon mass.
impl Mul<CarbonIntensity> for Energy {
    type Output = CarbonMass;
    fn mul(self, rhs: CarbonIntensity) -> CarbonMass {
        CarbonMass::from_grams(self.kilowatt_hours() * rhs.grams_per_kwh())
    }
}

/// Commuted form of `Energy * CarbonIntensity`.
impl Mul<Energy> for CarbonIntensity {
    type Output = CarbonMass;
    fn mul(self, rhs: Energy) -> CarbonMass {
        rhs * self
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl SubAssign for Energy {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        Energy(iter.map(|e| e.0).sum())
    }
}

impl<'a> Sum<&'a Energy> for Energy {
    fn sum<I: Iterator<Item = &'a Energy>>(iter: I) -> Energy {
        Energy(iter.map(|e| e.0).sum())
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kwh = self.kilowatt_hours().abs();
        if kwh >= 1e3 {
            write!(f, "{:.2} MWh", self.megawatt_hours())
        } else if kwh >= 1.0 {
            write!(f, "{:.2} kWh", self.kilowatt_hours())
        } else if kwh >= 1e-3 {
            write!(f, "{:.1} Wh", self.watt_hours())
        } else {
            write!(f, "{:.1} J", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let e = Energy::from_kilowatt_hours(2.0);
        assert_eq!(e.joules(), 7.2e6);
        assert_eq!(e.watt_hours(), 2_000.0);
        assert_eq!(e.megawatt_hours(), 2e-3);
        assert_eq!(Energy::from_watt_hours(500.0).kilowatt_hours(), 0.5);
        assert_eq!(Energy::from_megawatt_hours(1.0).kilowatt_hours(), 1_000.0);
    }

    #[test]
    fn arithmetic() {
        let a = Energy::from_kilowatt_hours(3.0);
        let b = Energy::from_kilowatt_hours(1.5);
        assert_eq!(a + b, Energy::from_kilowatt_hours(4.5));
        assert_eq!(a - b, b);
        assert_eq!(a * 2.0, Energy::from_kilowatt_hours(6.0));
        assert_eq!(0.5 * a, b);
        assert_eq!(a / 2.0, b);
        assert_eq!(a / b, 2.0);
        assert_eq!((-a).kilowatt_hours(), -3.0);
    }

    #[test]
    fn mean_power() {
        let e = Energy::from_kilowatt_hours(24.0);
        let p = e.mean_power_over(SimDuration::DAY);
        assert!((p.kilowatts() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn mean_power_zero_span_panics() {
        let _ = Energy::from_joules(1.0).mean_power_over(SimDuration::ZERO);
    }

    #[test]
    fn energy_times_intensity_matches_paper() {
        // Paper §5: 19,380 kWh at 50/175/300 g/kWh → 969/3,391/5,814 kgCO2.
        let e = Energy::from_kilowatt_hours(19_380.0);
        let lo = e * CarbonIntensity::from_grams_per_kwh(50.0);
        let mid = e * CarbonIntensity::from_grams_per_kwh(175.0);
        let hi = e * CarbonIntensity::from_grams_per_kwh(300.0);
        assert!((lo.kilograms() - 969.0).abs() < 0.5);
        assert!((mid.kilograms() - 3_391.5).abs() < 0.5);
        assert!((hi.kilograms() - 5_814.0).abs() < 0.5);
        // Commutes.
        assert_eq!(CarbonIntensity::from_grams_per_kwh(50.0) * e, lo);
    }

    #[test]
    fn summation() {
        let parts = [
            Energy::from_kilowatt_hours(1_299.0), // QMUL
            Energy::from_kilowatt_hours(261.0),   // CAM
            Energy::from_kilowatt_hours(8_154.0), // DUR
            Energy::from_kilowatt_hours(3_831.0), // STFC Cloud
            Energy::from_kilowatt_hours(4_271.0), // STFC SCARF
            Energy::from_kilowatt_hours(944.0),   // IMP
        ];
        let total: Energy = parts.iter().sum();
        // Table 2's total row.
        assert!((total.kilowatt_hours() - 18_760.0).abs() < 1e-9);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(
            Energy::from_kilowatt_hours(18_760.0).to_string(),
            "18.76 MWh"
        );
        assert_eq!(Energy::from_kilowatt_hours(12.5).to_string(), "12.50 kWh");
        assert_eq!(Energy::from_watt_hours(250.0).to_string(), "250.0 Wh");
        assert_eq!(Energy::from_joules(10.0).to_string(), "10.0 J");
    }
}
