//! Error type for quantity construction and combination.

use std::fmt;

/// Errors raised when constructing or combining quantities.
#[derive(Clone, Debug, PartialEq)]
pub enum UnitsError {
    /// A PUE below 1.0 or non-finite was supplied.
    InvalidPue(f64),
    /// A quantity that must be non-negative was negative.
    NegativeQuantity {
        /// Human-readable name of the quantity ("energy", "lifespan", …).
        what: &'static str,
        /// The offending value in the quantity's canonical unit.
        value: f64,
    },
    /// A low/mid/high triple was not ordered `low ≤ mid ≤ high`.
    UnorderedEstimate {
        /// Description of the estimate being built.
        what: String,
    },
    /// A non-finite (NaN or infinite) value reached a validated boundary.
    NonFinite {
        /// Human-readable name of the quantity.
        what: &'static str,
    },
    /// Two sampling grids could not be aligned exactly (see
    /// `align::TimeGrid::project_onto` for the rules).
    GridMismatch {
        /// Which alignment rule was violated.
        reason: &'static str,
    },
}

impl fmt::Display for UnitsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitsError::InvalidPue(v) => {
                write!(f, "invalid PUE {v}: must be finite and ≥ 1.0")
            }
            UnitsError::NegativeQuantity { what, value } => {
                write!(f, "{what} must be non-negative, got {value}")
            }
            UnitsError::UnorderedEstimate { what } => {
                write!(f, "estimate {what} must satisfy low ≤ mid ≤ high")
            }
            UnitsError::NonFinite { what } => {
                write!(f, "{what} must be finite (got NaN or infinity)")
            }
            UnitsError::GridMismatch { reason } => {
                write!(f, "time grids cannot be aligned: {reason}")
            }
        }
    }
}

impl std::error::Error for UnitsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            UnitsError::InvalidPue(0.9).to_string(),
            "invalid PUE 0.9: must be finite and ≥ 1.0"
        );
        assert_eq!(
            UnitsError::NegativeQuantity {
                what: "energy",
                value: -1.0
            }
            .to_string(),
            "energy must be non-negative, got -1"
        );
        assert!(UnitsError::UnorderedEstimate {
            what: "pue sweep".into()
        }
        .to_string()
        .contains("low ≤ mid ≤ high"));
        assert!(UnitsError::NonFinite { what: "power" }
            .to_string()
            .contains("finite"));
        assert!(UnitsError::GridMismatch {
            reason: "grid phases differ by a fraction of a slot"
        }
        .to_string()
        .contains("cannot be aligned"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>(_: E) {}
        assert_err(UnitsError::InvalidPue(0.0));
    }
}
