//! Bounded-uncertainty containers: low/mid/high triples and two-sided bounds.
//!
//! The IRISCAST paper never reports a single number: every quantity is a
//! *range* (carbon intensity 50/175/300, PUE 1.1/1.3/1.5, embodied carbon
//! 400–1100 kgCO₂). [`TriEstimate`] makes that idiom first-class so ranges
//! propagate through the model without manual bookkeeping, and [`Bounds`]
//! covers the two-sided cases.

use crate::UnitsError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// A low / mid / high estimate of a quantity, ordered `low ≤ mid ≤ high`.
///
/// Arithmetic is element-wise, which is the correct propagation rule when
/// the operands are *comonotonic* (all three scenarios move together — the
/// paper's usage: "low everything" vs "high everything"). For worst-case
/// interval arithmetic across independent quantities use
/// [`TriEstimate::combine_extremes`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TriEstimate<T> {
    /// Optimistic scenario value.
    pub low: T,
    /// Central scenario value.
    pub mid: T,
    /// Pessimistic scenario value.
    pub high: T,
}

impl<T> TriEstimate<T> {
    /// Builds a triple without checking ordering. Prefer
    /// [`TriEstimate::checked`] at API boundaries.
    pub const fn new(low: T, mid: T, high: T) -> Self {
        TriEstimate { low, mid, high }
    }

    /// Applies `f` to each scenario independently.
    pub fn map<U>(self, mut f: impl FnMut(T) -> U) -> TriEstimate<U> {
        TriEstimate {
            low: f(self.low),
            mid: f(self.mid),
            high: f(self.high),
        }
    }

    /// Pairs scenarios element-wise with another triple.
    pub fn zip<U>(self, other: TriEstimate<U>) -> TriEstimate<(T, U)> {
        TriEstimate {
            low: (self.low, other.low),
            mid: (self.mid, other.mid),
            high: (self.high, other.high),
        }
    }

    /// Borrowing iterator in `low, mid, high` order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        [&self.low, &self.mid, &self.high].into_iter()
    }

    /// Scenario labels aligned with [`TriEstimate::iter`].
    pub const LABELS: [&'static str; 3] = ["Low", "Medium", "High"];
}

impl<T: Copy> TriEstimate<T> {
    /// A degenerate estimate where all three scenarios coincide.
    pub fn exact(value: T) -> Self {
        TriEstimate {
            low: value,
            mid: value,
            high: value,
        }
    }

    /// The three scenarios as an ordered sample list (`low, mid, high`) —
    /// the bridge from the paper's fixed triples to arbitrary-length
    /// scenario axes.
    pub fn to_vec(self) -> Vec<T> {
        vec![self.low, self.mid, self.high]
    }

    /// Consuming iterator in `low, mid, high` order.
    pub fn into_values(self) -> impl Iterator<Item = T> {
        [self.low, self.mid, self.high].into_iter()
    }
}

impl<T: PartialOrd + fmt::Debug> TriEstimate<T> {
    /// Builds a triple, verifying `low ≤ mid ≤ high`.
    pub fn checked(low: T, mid: T, high: T) -> Result<Self, UnitsError> {
        if low <= mid && mid <= high {
            Ok(TriEstimate { low, mid, high })
        } else {
            Err(UnitsError::UnorderedEstimate {
                what: format!("({low:?}, {mid:?}, {high:?})"),
            })
        }
    }

    /// `true` when the invariant `low ≤ mid ≤ high` holds.
    pub fn is_ordered(&self) -> bool {
        self.low <= self.mid && self.mid <= self.high
    }
}

impl<T: Copy + PartialOrd> TriEstimate<T> {
    /// Worst-case combination with an *independent* estimate: every pairing
    /// of scenarios is formed with `f` and the envelope (min/mid/max of the
    /// nine candidates, using the mid×mid pairing as the centre) is
    /// returned. This is interval arithmetic, wider than element-wise.
    pub fn combine_extremes<U: Copy, V: Copy + PartialOrd>(
        self,
        other: TriEstimate<U>,
        mut f: impl FnMut(T, U) -> V,
    ) -> TriEstimate<V> {
        let mut lo: Option<V> = None;
        let mut hi: Option<V> = None;
        for &a in [self.low, self.mid, self.high].iter() {
            for &b in [other.low, other.mid, other.high].iter() {
                let v = f(a, b);
                lo = Some(match lo {
                    Some(l) if l <= v => l,
                    _ => v,
                });
                hi = Some(match hi {
                    Some(h) if h >= v => h,
                    _ => v,
                });
            }
        }
        TriEstimate {
            low: lo.expect("nine candidates always produced"),
            mid: f(self.mid, other.mid),
            high: hi.expect("nine candidates always produced"),
        }
    }
}

impl<A, B> Add<TriEstimate<B>> for TriEstimate<A>
where
    A: Add<B>,
{
    type Output = TriEstimate<A::Output>;
    fn add(self, rhs: TriEstimate<B>) -> Self::Output {
        TriEstimate {
            low: self.low + rhs.low,
            mid: self.mid + rhs.mid,
            high: self.high + rhs.high,
        }
    }
}

impl<A, B> Sub<TriEstimate<B>> for TriEstimate<A>
where
    A: Sub<B>,
{
    type Output = TriEstimate<A::Output>;
    fn sub(self, rhs: TriEstimate<B>) -> Self::Output {
        TriEstimate {
            low: self.low - rhs.low,
            mid: self.mid - rhs.mid,
            high: self.high - rhs.high,
        }
    }
}

impl<A: Mul<f64>> Mul<f64> for TriEstimate<A> {
    type Output = TriEstimate<A::Output>;
    fn mul(self, rhs: f64) -> Self::Output {
        TriEstimate {
            low: self.low * rhs,
            mid: self.mid * rhs,
            high: self.high * rhs,
        }
    }
}

impl<A: Div<f64>> Div<f64> for TriEstimate<A> {
    type Output = TriEstimate<A::Output>;
    fn div(self, rhs: f64) -> Self::Output {
        TriEstimate {
            low: self.low / rhs,
            mid: self.mid / rhs,
            high: self.high / rhs,
        }
    }
}

impl<T: fmt::Display> fmt::Display for TriEstimate<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} / {} / {}", self.low, self.mid, self.high)
    }
}

/// A simple two-sided `[lo, hi]` interval (used where the paper quotes only
/// bounds, e.g. embodied carbon "between 400 and 1100 kgCO₂").
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Bounds<T> {
    /// Lower bound (inclusive).
    pub lo: T,
    /// Upper bound (inclusive).
    pub hi: T,
}

impl<T: PartialOrd + fmt::Debug> Bounds<T> {
    /// Builds `[lo, hi]`, verifying `lo ≤ hi`.
    pub fn checked(lo: T, hi: T) -> Result<Self, UnitsError> {
        if lo <= hi {
            Ok(Bounds { lo, hi })
        } else {
            Err(UnitsError::UnorderedEstimate {
                what: format!("bounds ({lo:?}, {hi:?})"),
            })
        }
    }

    /// `true` when `v` lies within `[lo, hi]`.
    pub fn contains(&self, v: &T) -> bool {
        *v >= self.lo && *v <= self.hi
    }
}

impl<T> Bounds<T> {
    /// Builds `[lo, hi]` without checking order.
    pub const fn new(lo: T, hi: T) -> Self {
        Bounds { lo, hi }
    }

    /// Applies `f` to both bounds.
    pub fn map<U>(self, mut f: impl FnMut(T) -> U) -> Bounds<U> {
        Bounds {
            lo: f(self.lo),
            hi: f(self.hi),
        }
    }
}

impl<T: crate::sample::Lerp> Bounds<T> {
    /// `n` evenly spaced samples spanning the interval inclusively — the
    /// standard way to turn published bounds into a scenario axis.
    ///
    /// ```
    /// use iriscast_units::{Bounds, CarbonMass};
    /// let embodied = Bounds::new(
    ///     CarbonMass::from_kilograms(400.0),
    ///     CarbonMass::from_kilograms(1_100.0),
    /// );
    /// let samples = embodied.linspace(8);
    /// assert_eq!(samples.len(), 8);
    /// assert_eq!(samples[0], embodied.lo);
    /// assert_eq!(samples[7], embodied.hi);
    /// ```
    pub fn linspace(self, n: usize) -> Vec<T> {
        crate::sample::linspace(self.lo, self.hi, n)
    }

    /// The two bounds as a sample list `[lo, hi]` (the paper's embodied
    /// bracket as a 2-sample axis).
    pub fn to_vec(self) -> Vec<T> {
        vec![self.lo, self.hi]
    }
}

impl<T: fmt::Display> fmt::Display for Bounds<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CarbonIntensity, CarbonMass, Energy};

    #[test]
    fn checked_enforces_order() {
        assert!(TriEstimate::checked(1.0, 2.0, 3.0).is_ok());
        assert!(TriEstimate::checked(1.0, 1.0, 1.0).is_ok());
        assert!(TriEstimate::checked(2.0, 1.0, 3.0).is_err());
        assert!(TriEstimate::checked(1.0, 3.0, 2.0).is_err());
    }

    #[test]
    fn paper_reference_intensities_propagate() {
        // The paper's CI references applied to its effective energy.
        let ci = TriEstimate::new(
            CarbonIntensity::from_grams_per_kwh(50.0),
            CarbonIntensity::from_grams_per_kwh(175.0),
            CarbonIntensity::from_grams_per_kwh(300.0),
        );
        let e = Energy::from_kilowatt_hours(19_380.0);
        let carbon = ci.map(|c| e * c);
        assert!((carbon.low.kilograms() - 969.0).abs() < 0.5);
        assert!((carbon.mid.kilograms() - 3_391.5).abs() < 0.5);
        assert!((carbon.high.kilograms() - 5_814.0).abs() < 0.5);
        assert!(carbon.is_ordered());
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = TriEstimate::new(1.0, 2.0, 3.0);
        let b = TriEstimate::new(10.0, 20.0, 30.0);
        let sum = a + b;
        assert_eq!(sum, TriEstimate::new(11.0, 22.0, 33.0));
        let diff = b - a;
        assert_eq!(diff, TriEstimate::new(9.0, 18.0, 27.0));
        assert_eq!(a * 2.0, TriEstimate::new(2.0, 4.0, 6.0));
        assert_eq!(b / 10.0, a);
    }

    #[test]
    fn map_zip_iter() {
        let t = TriEstimate::new(1, 2, 3);
        assert_eq!(t.map(|x| x * x), TriEstimate::new(1, 4, 9));
        let z = t.zip(TriEstimate::new("a", "b", "c"));
        assert_eq!(z.mid, (2, "b"));
        let collected: Vec<_> = t.iter().copied().collect();
        assert_eq!(collected, vec![1, 2, 3]);
        assert_eq!(TriEstimate::exact(7).into_values().sum::<i32>(), 21);
        assert_eq!(TriEstimate::<i32>::LABELS, ["Low", "Medium", "High"]);
    }

    #[test]
    fn combine_extremes_is_envelope() {
        // Independent ranges: total = active(CI) + embodied(lifespan).
        // The extremes pair low-with-low and high-with-high here, but
        // combine_extremes must also be correct for anti-monotone f.
        let a = TriEstimate::new(1.0, 2.0, 3.0);
        let b = TriEstimate::new(10.0, 20.0, 30.0);
        let sum = a.combine_extremes(b, |x, y| x + y);
        assert_eq!(sum, TriEstimate::new(11.0, 22.0, 33.0));
        // Anti-monotone combination: subtraction widens the envelope.
        let diff = a.combine_extremes(b, |x, y| x - y);
        assert_eq!(diff.low, 1.0 - 30.0);
        assert_eq!(diff.high, 3.0 - 10.0);
        assert_eq!(diff.mid, 2.0 - 20.0);
        assert!(diff.is_ordered());
    }

    #[test]
    fn paper_summary_envelope() {
        // §6: total snapshot = active 1,066–9,302 kg + embodied 375–2,409 kg.
        let active = TriEstimate::new(
            CarbonMass::from_kilograms(1_066.0),
            CarbonMass::from_kilograms(4_409.0),
            CarbonMass::from_kilograms(9_302.0),
        );
        let embodied = TriEstimate::new(
            CarbonMass::from_kilograms(375.0),
            CarbonMass::from_kilograms(657.0),
            CarbonMass::from_kilograms(2_409.0),
        );
        let total = active.combine_extremes(embodied, |a, e| a + e);
        assert!((total.low.kilograms() - 1_441.0).abs() < 1e-9);
        assert!((total.high.kilograms() - 11_711.0).abs() < 1e-9);
    }

    #[test]
    fn bounds() {
        let b = Bounds::checked(400.0, 1_100.0).unwrap();
        assert!(b.contains(&700.0));
        assert!(b.contains(&400.0));
        assert!(b.contains(&1_100.0));
        assert!(!b.contains(&399.9));
        assert!(Bounds::checked(2.0, 1.0).is_err());
        assert_eq!(b.map(|x| x * 2.0), Bounds::new(800.0, 2_200.0));
        assert_eq!(b.to_string(), "[400, 1100]");
    }

    #[test]
    fn display() {
        let t = TriEstimate::new(1.0, 2.0, 3.0);
        assert_eq!(t.to_string(), "1 / 2 / 3");
    }

    #[test]
    fn serde_round_trip() {
        let t = TriEstimate::new(1.5, 2.5, 3.5);
        let json = serde_json::to_string(&t).unwrap();
        let back: TriEstimate<f64> = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
