//! Formatting helpers for reports and tables.

/// Formats a number with `,` thousands separators and `decimals` fractional
/// digits, matching the paper's table style (`18,760`, `9,302`).
///
/// ```
/// use iriscast_units::format_grouped;
/// assert_eq!(format_grouped(18760.0, 0), "18,760");
/// assert_eq!(format_grouped(-1234.5, 1), "-1,234.5");
/// ```
pub fn format_grouped(value: f64, decimals: usize) -> String {
    if !value.is_finite() {
        return format!("{value}");
    }
    let formatted = format!("{value:.decimals$}");
    let (sign, rest) = match formatted.strip_prefix('-') {
        Some(r) => ("-", r),
        None => ("", formatted.as_str()),
    };
    let (int_part, frac_part) = match rest.split_once('.') {
        Some((i, f)) => (i, Some(f)),
        None => (rest, None),
    };
    let mut grouped = String::with_capacity(int_part.len() + int_part.len() / 3 + 8);
    let digits = int_part.len();
    for (i, ch) in int_part.chars().enumerate() {
        if i > 0 && (digits - i) % 3 == 0 {
            grouped.push(',');
        }
        grouped.push(ch);
    }
    match frac_part {
        Some(f) => format!("{sign}{grouped}.{f}"),
        None => format!("{sign}{grouped}"),
    }
}

/// Formats a value with an SI prefix against a base unit, e.g.
/// `format_si(18_760_000.0, "Wh")` → `"18.76 MWh"`.
///
/// ```
/// use iriscast_units::format_si;
/// assert_eq!(format_si(18_760_000.0, "Wh"), "18.76 MWh");
/// assert_eq!(format_si(450.0, "W"), "450.00 W");
/// assert_eq!(format_si(0.005, "g"), "5.00 mg");
/// ```
pub fn format_si(value: f64, unit: &str) -> String {
    if value == 0.0 || !value.is_finite() {
        return format!("{value:.2} {unit}");
    }
    const PREFIXES: [(&str, f64); 9] = [
        ("T", 1e12),
        ("G", 1e9),
        ("M", 1e6),
        ("k", 1e3),
        ("", 1.0),
        ("m", 1e-3),
        ("µ", 1e-6),
        ("n", 1e-9),
        ("p", 1e-12),
    ];
    let magnitude = value.abs();
    for (prefix, scale) in PREFIXES {
        if magnitude >= scale {
            return format!("{:.2} {}{}", value / scale, prefix, unit);
        }
    }
    format!("{value:.2e} {unit}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping_basic() {
        assert_eq!(format_grouped(0.0, 0), "0");
        assert_eq!(format_grouped(999.0, 0), "999");
        assert_eq!(format_grouped(1_000.0, 0), "1,000");
        assert_eq!(format_grouped(18_760.0, 0), "18,760");
        assert_eq!(format_grouped(1_234_567.0, 0), "1,234,567");
    }

    #[test]
    fn grouping_decimals_and_sign() {
        assert_eq!(format_grouped(1_550.4, 1), "1,550.4");
        assert_eq!(format_grouped(-9_302.0, 2), "-9,302.00");
        assert_eq!(format_grouped(0.36, 2), "0.36");
    }

    #[test]
    fn grouping_rounding_carries() {
        // 999.95 rounds to 1000.0 at 1 decimal — the comma must appear.
        assert_eq!(format_grouped(999.95, 1), "1,000.0");
    }

    #[test]
    fn grouping_non_finite() {
        assert_eq!(format_grouped(f64::NAN, 0), "NaN");
        assert_eq!(format_grouped(f64::INFINITY, 0), "inf");
    }

    #[test]
    fn si_scales() {
        assert_eq!(format_si(1.0, "W"), "1.00 W");
        assert_eq!(format_si(1_500.0, "W"), "1.50 kW");
        assert_eq!(format_si(2.5e9, "W"), "2.50 GW");
        assert_eq!(format_si(3.1e12, "Wh"), "3.10 TWh");
        assert_eq!(format_si(-4_200.0, "g"), "-4.20 kg");
        assert_eq!(format_si(0.0, "W"), "0.00 W");
        assert_eq!(format_si(2e-7, "g"), "200.00 ng");
    }
}
