//! Carbon intensity of electricity supply.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// Carbon intensity of an electricity supply, in grams of CO₂e emitted per
/// kilowatt-hour consumed (the unit used by carbonintensity.org.uk and by
/// the paper's reference values of 50 / 175 / 300 gCO₂/kWh).
///
/// This is the `CMₑ` factor of equation (3): multiplying an [`crate::Energy`]
/// by a `CarbonIntensity` yields a [`crate::CarbonMass`].
#[derive(Copy, Clone, Debug, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct CarbonIntensity(f64);

impl CarbonIntensity {
    /// A fully zero-carbon supply (the hypothetical the paper's summary
    /// discusses — note its caveat that *embodied* generation carbon never
    /// reaches zero).
    pub const ZERO: CarbonIntensity = CarbonIntensity(0.0);

    /// Intensity from grams CO₂e per kWh.
    pub const fn from_grams_per_kwh(g_per_kwh: f64) -> Self {
        CarbonIntensity(g_per_kwh)
    }

    /// Value in grams CO₂e per kWh.
    pub const fn grams_per_kwh(self) -> f64 {
        self.0
    }

    /// Value in kilograms CO₂e per MWh (numerically identical to g/kWh).
    pub const fn kg_per_mwh(self) -> f64 {
        self.0
    }

    /// `true` when the value is finite (not NaN/∞).
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Numerically smaller of two intensities.
    pub fn min(self, other: Self) -> Self {
        CarbonIntensity(self.0.min(other.0))
    }

    /// Numerically larger of two intensities.
    pub fn max(self, other: Self) -> Self {
        CarbonIntensity(self.0.max(other.0))
    }

    /// Total-order comparison (NaN sorts last).
    pub fn total_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for CarbonIntensity {
    type Output = CarbonIntensity;
    fn add(self, rhs: Self) -> Self {
        CarbonIntensity(self.0 + rhs.0)
    }
}

impl Sub for CarbonIntensity {
    type Output = CarbonIntensity;
    fn sub(self, rhs: Self) -> Self {
        CarbonIntensity(self.0 - rhs.0)
    }
}

impl Mul<f64> for CarbonIntensity {
    type Output = CarbonIntensity;
    fn mul(self, rhs: f64) -> Self {
        CarbonIntensity(self.0 * rhs)
    }
}

impl Mul<CarbonIntensity> for f64 {
    type Output = CarbonIntensity;
    fn mul(self, rhs: CarbonIntensity) -> CarbonIntensity {
        CarbonIntensity(self * rhs.0)
    }
}

impl Div<f64> for CarbonIntensity {
    type Output = CarbonIntensity;
    fn div(self, rhs: f64) -> Self {
        CarbonIntensity(self.0 / rhs)
    }
}

/// Ratio of two intensities (dimensionless).
impl Div<CarbonIntensity> for CarbonIntensity {
    type Output = f64;
    fn div(self, rhs: CarbonIntensity) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for CarbonIntensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} gCO2/kWh", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Energy;

    #[test]
    fn construction_and_accessors() {
        let ci = CarbonIntensity::from_grams_per_kwh(175.0);
        assert_eq!(ci.grams_per_kwh(), 175.0);
        assert_eq!(ci.kg_per_mwh(), 175.0);
        assert_eq!(CarbonIntensity::ZERO.grams_per_kwh(), 0.0);
    }

    #[test]
    fn arithmetic() {
        let a = CarbonIntensity::from_grams_per_kwh(100.0);
        let b = CarbonIntensity::from_grams_per_kwh(50.0);
        assert_eq!(a + b, CarbonIntensity::from_grams_per_kwh(150.0));
        assert_eq!(a - b, b);
        assert_eq!(a * 0.5, b);
        assert_eq!(0.5 * a, b);
        assert_eq!(a / 2.0, b);
        assert_eq!(a / b, 2.0);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn weighted_blend_example() {
        // Blending a 300 g/kWh supply (25%) with a 100 g/kWh supply (75%).
        let blend = CarbonIntensity::from_grams_per_kwh(300.0) * 0.25
            + CarbonIntensity::from_grams_per_kwh(100.0) * 0.75;
        assert_eq!(blend.grams_per_kwh(), 150.0);
        let c = Energy::from_kilowatt_hours(10.0) * blend;
        assert_eq!(c.kilograms(), 1.5);
    }

    #[test]
    fn display() {
        assert_eq!(
            CarbonIntensity::from_grams_per_kwh(175.4).to_string(),
            "175 gCO2/kWh"
        );
    }
}
