//! Dimensional quantity types for the `iriscast` carbon-assessment toolkit.
//!
//! Carbon accounting mixes several physical dimensions — energy, power,
//! carbon mass, carbon intensity, time — and unit mistakes (kWh vs J,
//! g vs kg, W vs kW) are the classic failure mode of ad-hoc spreadsheets.
//! This crate provides thin, zero-cost newtypes over `f64` with:
//!
//! * explicit named constructors and accessors for every supported unit
//!   (`Energy::from_kilowatt_hours`, `Power::from_watts`, …);
//! * only the *dimensionally valid* arithmetic: `Power * SimDuration`
//!   yields [`Energy`], `Energy * CarbonIntensity` yields [`CarbonMass`],
//!   and so on — invalid combinations simply do not compile;
//! * a simulation clock ([`Timestamp`], [`SimDuration`], [`Period`])
//!   independent of wall-clock time so experiments are deterministic;
//! * time-axis alignment rules ([`align::TimeGrid`],
//!   [`align::GridProjection`]) for convolving series sampled on
//!   different grids exactly or not at all;
//! * [`TriEstimate`], the low/mid/high triple used throughout the IRISCAST
//!   paper to propagate bounded uncertainty through the model;
//! * human-friendly formatting helpers for reports and tables.
//!
//! # Example
//!
//! ```
//! use iriscast_units::{Power, SimDuration, CarbonIntensity, Pue};
//!
//! // A 450 W node running for 24 hours…
//! let energy = Power::from_watts(450.0) * SimDuration::from_hours(24.0);
//! assert!((energy.kilowatt_hours() - 10.8).abs() < 1e-9);
//!
//! // …through a data centre with PUE 1.3, on a 175 gCO2/kWh grid:
//! let wall = Pue::new(1.3).unwrap().apply(energy);
//! let carbon = wall * CarbonIntensity::from_grams_per_kwh(175.0);
//! assert!((carbon.kilograms() - 2.4570).abs() < 1e-3);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod align;
mod carbon;
mod energy;
mod error;
mod estimate;
mod fmt;
mod intensity;
mod power;
mod pue;
pub mod sample;
mod time;

pub use align::{GridProjection, TimeGrid};
pub use carbon::CarbonMass;
pub use energy::Energy;
pub use error::UnitsError;
pub use estimate::{Bounds, TriEstimate};
pub use fmt::{format_grouped, format_si};
pub use intensity::CarbonIntensity;
pub use power::Power;
pub use pue::Pue;
pub use sample::Lerp;
pub use time::{
    Period, SimDuration, StepIter, Timestamp, SECS_PER_DAY, SECS_PER_HOUR, SECS_PER_MINUTE,
    SETTLEMENT_PERIODS_PER_DAY,
};

/// Convenient glob-import of every quantity type.
///
/// ```
/// use iriscast_units::prelude::*;
/// let p = Power::from_kilowatts(1.2);
/// let e = p * SimDuration::from_hours(2.0);
/// assert_eq!(e, Energy::from_kilowatt_hours(2.4));
/// ```
pub mod prelude {
    pub use crate::{
        Bounds, CarbonIntensity, CarbonMass, Energy, Period, Power, Pue, SimDuration, TimeGrid,
        Timestamp, TriEstimate,
    };
}
