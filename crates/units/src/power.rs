//! Instantaneous electrical power.

use crate::{Energy, SimDuration};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Instantaneous electrical power, stored internally in watts.
///
/// `Power * SimDuration` produces [`Energy`]; dividing two powers gives a
/// dimensionless ratio. Negative powers are representable (they arise in
/// subtraction, e.g. when computing a coverage deficit) but most consumers
/// validate non-negativity at their boundary.
#[derive(Copy, Clone, Debug, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Power(f64);

impl Power {
    /// Zero watts.
    pub const ZERO: Power = Power(0.0);

    /// Power from watts.
    pub const fn from_watts(watts: f64) -> Self {
        Power(watts)
    }

    /// Power from kilowatts.
    pub fn from_kilowatts(kw: f64) -> Self {
        Power(kw * 1e3)
    }

    /// Power from megawatts.
    pub fn from_megawatts(mw: f64) -> Self {
        Power(mw * 1e6)
    }

    /// Power from gigawatts (grid-scale generation).
    pub fn from_gigawatts(gw: f64) -> Self {
        Power(gw * 1e9)
    }

    /// Value in watts.
    pub const fn watts(self) -> f64 {
        self.0
    }

    /// Value in kilowatts.
    pub fn kilowatts(self) -> f64 {
        self.0 / 1e3
    }

    /// Value in megawatts.
    pub fn megawatts(self) -> f64 {
        self.0 / 1e6
    }

    /// Value in gigawatts.
    pub fn gigawatts(self) -> f64 {
        self.0 / 1e9
    }

    /// `true` when the value is finite (not NaN/∞). Simulation code asserts
    /// this at module boundaries after floating-point pipelines.
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Numerically smaller of two powers (NaN-propagating like `f64::min`).
    pub fn min(self, other: Power) -> Power {
        Power(self.0.min(other.0))
    }

    /// Numerically larger of two powers.
    pub fn max(self, other: Power) -> Power {
        Power(self.0.max(other.0))
    }

    /// Clamps into `[lo, hi]`.
    pub fn clamp(self, lo: Power, hi: Power) -> Power {
        Power(self.0.clamp(lo.0, hi.0))
    }

    /// Total-order comparison (NaN sorts last), for sorting readings.
    pub fn total_cmp(&self, other: &Power) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Self) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl Sub for Power {
    type Output = Power;
    fn sub(self, rhs: Self) -> Power {
        Power(self.0 - rhs.0)
    }
}

impl Neg for Power {
    type Output = Power;
    fn neg(self) -> Power {
        Power(-self.0)
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Power {
        Power(self.0 * rhs)
    }
}

impl Mul<Power> for f64 {
    type Output = Power;
    fn mul(self, rhs: Power) -> Power {
        Power(self * rhs.0)
    }
}

impl Div<f64> for Power {
    type Output = Power;
    fn div(self, rhs: f64) -> Power {
        Power(self.0 / rhs)
    }
}

/// Ratio of two powers (dimensionless).
impl Div<Power> for Power {
    type Output = f64;
    fn div(self, rhs: Power) -> f64 {
        self.0 / rhs.0
    }
}

/// Power sustained over a span of time is energy: `P × Δt = E`.
impl Mul<SimDuration> for Power {
    type Output = Energy;
    fn mul(self, rhs: SimDuration) -> Energy {
        Energy::from_joules(self.0 * rhs.as_secs() as f64)
    }
}

/// Commuted form of `Power * SimDuration`.
impl Mul<Power> for SimDuration {
    type Output = Energy;
    fn mul(self, rhs: Power) -> Energy {
        rhs * self
    }
}

impl AddAssign for Power {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl SubAssign for Power {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        Power(iter.map(|p| p.0).sum())
    }
}

impl<'a> Sum<&'a Power> for Power {
    fn sum<I: Iterator<Item = &'a Power>>(iter: I) -> Power {
        Power(iter.map(|p| p.0).sum())
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.0.abs();
        if w >= 1e9 {
            write!(f, "{:.2} GW", self.gigawatts())
        } else if w >= 1e6 {
            write!(f, "{:.2} MW", self.megawatts())
        } else if w >= 1e3 {
            write!(f, "{:.2} kW", self.kilowatts())
        } else {
            write!(f, "{:.1} W", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(Power::from_kilowatts(1.0), Power::from_watts(1_000.0));
        assert_eq!(Power::from_megawatts(1.0), Power::from_kilowatts(1_000.0));
        assert_eq!(Power::from_gigawatts(1.0), Power::from_megawatts(1_000.0));
        assert_eq!(Power::from_gigawatts(2.5).watts(), 2.5e9);
    }

    #[test]
    fn arithmetic() {
        let a = Power::from_watts(300.0);
        let b = Power::from_watts(150.0);
        assert_eq!(a + b, Power::from_watts(450.0));
        assert_eq!(a - b, b);
        assert_eq!(a * 2.0, Power::from_watts(600.0));
        assert_eq!(2.0 * a, Power::from_watts(600.0));
        assert_eq!(a / 2.0, b);
        assert_eq!(a / b, 2.0);
        assert_eq!(-a, Power::from_watts(-300.0));
    }

    #[test]
    fn power_times_duration_is_energy() {
        let e = Power::from_watts(1_000.0) * SimDuration::HOUR;
        assert!((e.kilowatt_hours() - 1.0).abs() < 1e-12);
        // Commutes.
        assert_eq!(SimDuration::HOUR * Power::from_watts(1_000.0), e);
        // The paper's headline scale: ~2,462 nodes averaging ~317 W ≈ 18.7 MWh/day.
        let fleet = Power::from_watts(317.0) * 2_462.0;
        let day = fleet * SimDuration::DAY;
        assert!((day.megawatt_hours() - 18.73).abs() < 0.01);
    }

    #[test]
    fn sum_and_assign_ops() {
        let mut acc = Power::ZERO;
        acc += Power::from_watts(10.0);
        acc -= Power::from_watts(4.0);
        assert_eq!(acc.watts(), 6.0);
        let total: Power = [1.0, 2.0, 3.0].iter().map(|&w| Power::from_watts(w)).sum();
        assert_eq!(total.watts(), 6.0);
        let refs = [Power::from_watts(5.0), Power::from_watts(7.0)];
        let total: Power = refs.iter().sum();
        assert_eq!(total.watts(), 12.0);
    }

    #[test]
    fn min_max_clamp() {
        let a = Power::from_watts(10.0);
        let b = Power::from_watts(20.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(
            Power::from_watts(25.0).clamp(a, b),
            b,
            "clamp should cap at hi"
        );
        assert_eq!(Power::from_watts(5.0).clamp(a, b), a);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(Power::from_watts(450.0).to_string(), "450.0 W");
        assert_eq!(Power::from_watts(1_500.0).to_string(), "1.50 kW");
        assert_eq!(Power::from_megawatts(3.2).to_string(), "3.20 MW");
        assert_eq!(Power::from_gigawatts(28.0).to_string(), "28.00 GW");
    }

    #[test]
    fn finiteness_check() {
        assert!(Power::from_watts(1.0).is_finite());
        assert!(!Power::from_watts(f64::NAN).is_finite());
        assert!(!Power::from_watts(f64::INFINITY).is_finite());
    }
}
