//! Power Usage Effectiveness.

use crate::{Energy, Power, UnitsError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Power Usage Effectiveness: the ratio of total facility energy to the
/// energy delivered to IT equipment.
///
/// The paper (§5) uses PUE to estimate cooling/power-distribution/facility
/// overheads when they are not directly metered, sweeping Low = 1.1,
/// Medium = 1.3 and High = 1.5 (though the published Table 3 cells are
/// consistent with a High of 1.6 — see `iriscast-model`'s `paper` module).
///
/// A PUE below 1.0 is physically impossible (the facility cannot consume
/// less than its IT load), so construction is validated.
#[derive(Copy, Clone, Debug, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct Pue(f64);

impl Pue {
    /// The theoretical ideal: every joule goes to IT equipment.
    pub const IDEAL: Pue = Pue(1.0);

    /// Creates a PUE, rejecting values below 1.0 or non-finite values.
    pub fn new(value: f64) -> Result<Self, UnitsError> {
        if !value.is_finite() || value < 1.0 {
            return Err(UnitsError::InvalidPue(value));
        }
        Ok(Pue(value))
    }

    /// The raw ratio.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Total facility energy implied by IT energy `it`: `it × PUE`.
    pub fn apply(self, it: Energy) -> Energy {
        it * self.0
    }

    /// Total facility power implied by IT power `it`.
    pub fn apply_power(self, it: Power) -> Power {
        it * self.0
    }

    /// Overhead energy only (cooling + distribution + facility):
    /// `it × (PUE − 1)`.
    pub fn overhead(self, it: Energy) -> Energy {
        it * (self.0 - 1.0)
    }

    /// IT energy implied by a *total* facility measurement — the inverse of
    /// [`Pue::apply`]. Used when only a bulk facility meter exists.
    pub fn infer_it_energy(self, total: Energy) -> Energy {
        total / self.0
    }
}

impl TryFrom<f64> for Pue {
    type Error = UnitsError;
    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Pue::new(value)
    }
}

impl From<Pue> for f64 {
    fn from(p: Pue) -> f64 {
        p.0
    }
}

impl fmt::Display for Pue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PUE {:.2}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Pue::new(1.0).is_ok());
        assert!(Pue::new(1.3).is_ok());
        assert!(Pue::new(0.99).is_err());
        assert!(Pue::new(f64::NAN).is_err());
        assert!(Pue::new(f64::INFINITY).is_err());
        assert_eq!(Pue::IDEAL.value(), 1.0);
    }

    #[test]
    fn apply_and_overhead_are_consistent() {
        let pue = Pue::new(1.3).unwrap();
        let it = Energy::from_kilowatt_hours(1_000.0);
        let total = pue.apply(it);
        assert!((total.kilowatt_hours() - 1_300.0).abs() < 1e-9);
        let overhead = pue.overhead(it);
        assert!((overhead.kilowatt_hours() - 300.0).abs() < 1e-9);
        assert_eq!(it + overhead, total);
        // Round-trip through the inverse.
        let back = pue.infer_it_energy(total);
        assert!((back.kilowatt_hours() - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn apply_power() {
        let pue = Pue::new(1.5).unwrap();
        let p = pue.apply_power(Power::from_kilowatts(10.0));
        assert!((p.kilowatts() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn paper_table3_low_row() {
        // 969 kg of IT carbon × PUE row {1.1, 1.3, 1.6} → {1066, 1260, 1550}.
        // (PUE multiplies energy; with a fixed CI it scales carbon equally.)
        let it = Energy::from_kilowatt_hours(19_380.0);
        let ci = crate::CarbonIntensity::from_grams_per_kwh(50.0);
        for (pue, expect_kg) in [(1.1, 1_066.0), (1.3, 1_260.0), (1.6, 1_550.0)] {
            let c = Pue::new(pue).unwrap().apply(it) * ci;
            assert!(
                (c.kilograms() - expect_kg).abs() < 1.0,
                "PUE {pue}: got {} expected {expect_kg}",
                c.kilograms()
            );
        }
    }

    #[test]
    fn serde_rejects_invalid() {
        let ok: Pue = serde_json::from_str("1.25").unwrap();
        assert_eq!(ok.value(), 1.25);
        assert!(serde_json::from_str::<Pue>("0.5").is_err());
        let round: f64 = serde_json::to_string(&ok).unwrap().parse().unwrap();
        assert_eq!(round, 1.25);
    }

    #[test]
    fn display() {
        assert_eq!(Pue::new(1.3).unwrap().to_string(), "PUE 1.30");
    }
}
