//! Axis sampling: interpolation over quantity types.
//!
//! Scenario-space sweeps (see `iriscast-model`'s `space` module) need more
//! than the paper's three hand-picked values per input: an axis is *any*
//! ordered sample list. This module provides the interpolation primitive
//! that turns a `[lo, hi]` range into `n` evenly spaced samples for every
//! quantity type, so callers write
//! `Bounds::new(lo, hi).linspace(25)` instead of unit-juggling by hand.

use crate::{CarbonIntensity, CarbonMass, Energy, Power, Pue};

/// Linear interpolation between two values of a quantity type.
///
/// Implementors interpolate in their canonical internal unit, so
/// `lerp(a, b, 0.0) == a` and `lerp(a, b, 1.0) == b` exactly.
pub trait Lerp: Copy {
    /// The value a fraction `t ∈ [0, 1]` of the way from `a` to `b`.
    fn lerp(a: Self, b: Self, t: f64) -> Self;
}

/// Scalar interpolation: `a + (b − a)·t`.
fn scalar_lerp(a: f64, b: f64, t: f64) -> f64 {
    if t <= 0.0 {
        a
    } else if t >= 1.0 {
        b
    } else {
        a + (b - a) * t
    }
}

impl Lerp for f64 {
    fn lerp(a: Self, b: Self, t: f64) -> Self {
        scalar_lerp(a, b, t)
    }
}

impl Lerp for Energy {
    fn lerp(a: Self, b: Self, t: f64) -> Self {
        Energy::from_joules(scalar_lerp(a.joules(), b.joules(), t))
    }
}

impl Lerp for CarbonMass {
    fn lerp(a: Self, b: Self, t: f64) -> Self {
        CarbonMass::from_grams(scalar_lerp(a.grams(), b.grams(), t))
    }
}

impl Lerp for CarbonIntensity {
    fn lerp(a: Self, b: Self, t: f64) -> Self {
        CarbonIntensity::from_grams_per_kwh(scalar_lerp(a.grams_per_kwh(), b.grams_per_kwh(), t))
    }
}

impl Lerp for Power {
    fn lerp(a: Self, b: Self, t: f64) -> Self {
        Power::from_watts(scalar_lerp(a.watts(), b.watts(), t))
    }
}

impl Lerp for Pue {
    fn lerp(a: Self, b: Self, t: f64) -> Self {
        // Both endpoints are valid PUEs (finite, ≥ 1.0), so any convex
        // combination is too.
        Pue::new(scalar_lerp(a.value(), b.value(), t))
            .expect("convex combination of valid PUEs is a valid PUE")
    }
}

/// `n` evenly spaced samples from `lo` to `hi` inclusive.
///
/// `n == 1` yields just `lo`; `n == 0` yields an empty vector (callers
/// building scenario axes should reject that case at their boundary).
///
/// ```
/// use iriscast_units::sample::linspace;
/// use iriscast_units::CarbonIntensity;
/// let axis = linspace(
///     CarbonIntensity::from_grams_per_kwh(50.0),
///     CarbonIntensity::from_grams_per_kwh(300.0),
///     6,
/// );
/// assert_eq!(axis.len(), 6);
/// assert_eq!(axis[0].grams_per_kwh(), 50.0);
/// assert_eq!(axis[5].grams_per_kwh(), 300.0);
/// assert_eq!(axis[1].grams_per_kwh(), 100.0);
/// ```
pub fn linspace<T: Lerp>(lo: T, hi: T, n: usize) -> Vec<T> {
    match n {
        0 => Vec::new(),
        1 => vec![lo],
        _ => (0..n)
            .map(|i| T::lerp(lo, hi, i as f64 / (n - 1) as f64))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_are_exact() {
        let a = Energy::from_kilowatt_hours(100.0);
        let b = Energy::from_kilowatt_hours(333.3);
        let v = linspace(a, b, 7);
        assert_eq!(v.len(), 7);
        assert_eq!(v[0], a);
        assert_eq!(v[6], b);
        for w in v.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn degenerate_counts() {
        let v: Vec<f64> = linspace(1.0, 2.0, 0);
        assert!(v.is_empty());
        assert_eq!(linspace(1.0, 2.0, 1), vec![1.0]);
        assert_eq!(linspace(5.0, 5.0, 3), vec![5.0, 5.0, 5.0]);
    }

    #[test]
    fn pue_lerp_stays_valid() {
        let lo = Pue::new(1.05).unwrap();
        let hi = Pue::new(2.0).unwrap();
        for p in linspace(lo, hi, 11) {
            assert!(p.value() >= 1.05 && p.value() <= 2.0);
        }
    }

    #[test]
    fn carbon_mass_midpoint() {
        let v = linspace(
            CarbonMass::from_kilograms(400.0),
            CarbonMass::from_kilograms(1_100.0),
            3,
        );
        assert!((v[1].kilograms() - 750.0).abs() < 1e-9);
    }
}
