//! Simulation time: instants, durations, and half-open periods.
//!
//! All iriscast experiments run against a *simulation clock* counted in
//! whole seconds from an arbitrary epoch (for the IRIS snapshot scenario
//! the epoch is interpreted as 2022-11-01 00:00 UTC, but nothing in the
//! code depends on that interpretation). Using integer seconds keeps
//! sampling grids exact and results reproducible across platforms.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Seconds in one minute.
pub const SECS_PER_MINUTE: i64 = 60;
/// Seconds in one hour.
pub const SECS_PER_HOUR: i64 = 3_600;
/// Seconds in one day.
pub const SECS_PER_DAY: i64 = 86_400;
/// Settlement periods per day used by GB electricity-market data (30 min).
pub const SETTLEMENT_PERIODS_PER_DAY: usize = 48;

/// A span of simulation time, in whole seconds (may be negative for
/// arithmetic intermediates, though most APIs require non-negative spans).
///
/// `SimDuration` deliberately does not interoperate with
/// [`std::time::Duration`]: simulation time is decoupled from wall time.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SimDuration(i64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// One minute.
    pub const MINUTE: SimDuration = SimDuration(SECS_PER_MINUTE);
    /// One hour.
    pub const HOUR: SimDuration = SimDuration(SECS_PER_HOUR);
    /// One day.
    pub const DAY: SimDuration = SimDuration(SECS_PER_DAY);
    /// One GB electricity settlement period (30 minutes).
    pub const SETTLEMENT_PERIOD: SimDuration = SimDuration(30 * SECS_PER_MINUTE);

    /// Duration of `secs` whole seconds.
    pub const fn from_secs(secs: i64) -> Self {
        SimDuration(secs)
    }

    /// Duration of `minutes` whole minutes.
    pub const fn from_minutes(minutes: i64) -> Self {
        SimDuration(minutes * SECS_PER_MINUTE)
    }

    /// Duration from a (possibly fractional) number of hours, rounded to the
    /// nearest second.
    pub fn from_hours(hours: f64) -> Self {
        SimDuration((hours * SECS_PER_HOUR as f64).round() as i64)
    }

    /// Duration of `days` whole days.
    pub const fn from_days(days: i64) -> Self {
        SimDuration(days * SECS_PER_DAY)
    }

    /// Duration from a number of years, using the paper's 365-day year
    /// convention (hardware lifespans are quoted in years; see Table 4).
    pub fn from_years(years: f64) -> Self {
        SimDuration((years * 365.0 * SECS_PER_DAY as f64).round() as i64)
    }

    /// The span in whole seconds.
    pub const fn as_secs(self) -> i64 {
        self.0
    }

    /// The span in fractional hours.
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / SECS_PER_HOUR as f64
    }

    /// The span in fractional days.
    pub fn as_days(self) -> f64 {
        self.0 as f64 / SECS_PER_DAY as f64
    }

    /// The span in fractional 365-day years.
    pub fn as_years(self) -> f64 {
        self.as_days() / 365.0
    }

    /// `true` if the span is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `true` for spans of negative length (possible via subtraction).
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Dimensionless ratio of two durations.
    ///
    /// Used by amortisation: a 6-month share of a 5-year lifespan is
    /// `period.ratio_of(lifespan) == 0.1`.
    pub fn ratio_of(self, other: SimDuration) -> f64 {
        assert!(
            other.0 != 0,
            "cannot take ratio against a zero-length duration"
        );
        self.0 as f64 / other.0 as f64
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: Self) -> Self {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: Self) -> Self {
        SimDuration(self.0 - rhs.0)
    }
}

impl Neg for SimDuration {
    type Output = SimDuration;
    fn neg(self) -> Self {
        SimDuration(-self.0)
    }
}

impl Mul<i64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: i64) -> Self {
        SimDuration(self.0 * rhs)
    }
}

impl Div<i64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: i64) -> Self {
        SimDuration(self.0 / rhs)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.0;
        let sign = if total < 0 { "-" } else { "" };
        let total = total.abs();
        let days = total / SECS_PER_DAY;
        let hours = (total % SECS_PER_DAY) / SECS_PER_HOUR;
        let mins = (total % SECS_PER_HOUR) / SECS_PER_MINUTE;
        let secs = total % SECS_PER_MINUTE;
        if days > 0 {
            write!(f, "{sign}{days}d{hours:02}h{mins:02}m{secs:02}s")
        } else if hours > 0 {
            write!(f, "{sign}{hours}h{mins:02}m{secs:02}s")
        } else if mins > 0 {
            write!(f, "{sign}{mins}m{secs:02}s")
        } else {
            write!(f, "{sign}{secs}s")
        }
    }
}

/// An instant on the simulation clock, in whole seconds since the epoch.
#[derive(
    Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Timestamp(i64);

impl Timestamp {
    /// The simulation epoch (t = 0).
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: i64) -> Self {
        Timestamp(secs)
    }

    /// Instant a fractional number of hours after the epoch.
    pub fn from_hours(hours: f64) -> Self {
        Timestamp::EPOCH + SimDuration::from_hours(hours)
    }

    /// Instant `days` whole days after the epoch.
    pub const fn from_days(days: i64) -> Self {
        Timestamp(days * SECS_PER_DAY)
    }

    /// Seconds since the epoch.
    pub const fn as_secs(self) -> i64 {
        self.0
    }

    /// Fractional hours since the epoch.
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / SECS_PER_HOUR as f64
    }

    /// Whole days elapsed since the epoch (floor; negative instants floor
    /// towards negative infinity so day boundaries stay consistent).
    pub const fn day_index(self) -> i64 {
        self.0.div_euclid(SECS_PER_DAY)
    }

    /// Second-of-day in `[0, 86_400)`.
    pub const fn second_of_day(self) -> i64 {
        self.0.rem_euclid(SECS_PER_DAY)
    }

    /// Fractional hour-of-day in `[0, 24)`. Useful for diurnal models.
    pub fn hour_of_day(self) -> f64 {
        self.second_of_day() as f64 / SECS_PER_HOUR as f64
    }

    /// GB-style settlement period of the day, `0..48` (30-minute slots).
    pub const fn settlement_period(self) -> usize {
        (self.second_of_day() / (30 * SECS_PER_MINUTE)) as usize
    }

    /// Day-of-week index in `0..7`, with the epoch defined to fall on a
    /// Tuesday (2022-11-01 was a Tuesday), so 0 = Monday.
    pub const fn day_of_week(self) -> usize {
        ((self.day_index() + 1).rem_euclid(7)) as usize
    }

    /// `true` if the instant falls on a Saturday or Sunday.
    pub const fn is_weekend(self) -> bool {
        self.day_of_week() >= 5
    }

    /// Largest multiple of `step` (counted from the epoch) not after
    /// `self` — the start of the sampling slot containing this instant.
    ///
    /// Clocked simulation components use this to align signal slots and
    /// tick grids to the epoch regardless of when a window starts.
    /// Panics if `step` is not positive.
    pub fn floor_to(self, step: SimDuration) -> Timestamp {
        assert!(step.as_secs() > 0, "step must be positive");
        Timestamp(self.0.div_euclid(step.as_secs()) * step.as_secs())
    }

    /// Smallest multiple of `step` (counted from the epoch) not before
    /// `self` — the next slot boundary at or after this instant.
    ///
    /// Panics if `step` is not positive.
    pub fn ceil_to(self, step: SimDuration) -> Timestamp {
        assert!(step.as_secs() > 0, "step must be positive");
        let s = step.as_secs();
        Timestamp(self.0.div_euclid(s) * s + if self.0.rem_euclid(s) == 0 { 0 } else { s })
    }
}

impl Add<SimDuration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: SimDuration) -> Timestamp {
        Timestamp(self.0 + rhs.as_secs())
    }
}

impl Sub<SimDuration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: SimDuration) -> Timestamp {
        Timestamp(self.0 - rhs.as_secs())
    }
}

impl Sub for Timestamp {
    type Output = SimDuration;
    fn sub(self, rhs: Timestamp) -> SimDuration {
        SimDuration::from_secs(self.0 - rhs.0)
    }
}

impl AddAssign<SimDuration> for Timestamp {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_secs();
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let day = self.day_index();
        let sod = self.second_of_day();
        write!(
            f,
            "d{day}+{:02}:{:02}:{:02}",
            sod / SECS_PER_HOUR,
            (sod % SECS_PER_HOUR) / SECS_PER_MINUTE,
            sod % SECS_PER_MINUTE
        )
    }
}

/// A half-open interval `[start, end)` of simulation time.
///
/// Half-open semantics make adjacent periods tile exactly: the 24-hour
/// snapshot `[0, 86_400)` and the following day `[86_400, 172_800)` share
/// no instant, so no sample is double-counted.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Period {
    start: Timestamp,
    end: Timestamp,
}

impl Period {
    /// Creates `[start, end)`. Panics if `end < start`.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        assert!(
            end >= start,
            "period end ({end}) must not precede start ({start})"
        );
        Period { start, end }
    }

    /// The period `[start, start + len)`. Panics if `len` is negative.
    pub fn starting_at(start: Timestamp, len: SimDuration) -> Self {
        assert!(!len.is_negative(), "period length must be non-negative");
        Period {
            start,
            end: start + len,
        }
    }

    /// The canonical 24-hour snapshot window `[0, 1 day)` used by the paper.
    pub fn snapshot_24h() -> Self {
        Period::starting_at(Timestamp::EPOCH, SimDuration::DAY)
    }

    /// Whole day `day` as `[day·86 400, (day+1)·86 400)`.
    pub fn day(day: i64) -> Self {
        Period::starting_at(Timestamp::from_days(day), SimDuration::DAY)
    }

    /// Inclusive start instant.
    pub const fn start(&self) -> Timestamp {
        self.start
    }

    /// Exclusive end instant.
    pub const fn end(&self) -> Timestamp {
        self.end
    }

    /// Length of the period.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    /// `true` if the period contains no instants.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// `true` if `t` lies within `[start, end)`.
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && t < self.end
    }

    /// Intersection with another period, or `None` when disjoint.
    pub fn intersect(&self, other: &Period) -> Option<Period> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(Period { start, end })
        } else {
            None
        }
    }

    /// Fraction of `self` that overlaps `other`, in `[0, 1]`.
    ///
    /// Empty periods overlap nothing by convention.
    pub fn overlap_fraction(&self, other: &Period) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        match self.intersect(other) {
            Some(i) => i.duration().ratio_of(self.duration()),
            None => 0.0,
        }
    }

    /// Iterator over instants `start, start+step, …` strictly before `end`.
    ///
    /// Panics if `step` is not positive.
    pub fn iter_steps(&self, step: SimDuration) -> StepIter {
        assert!(step.as_secs() > 0, "step must be positive");
        StepIter {
            next: self.start,
            end: self.end,
            step,
        }
    }

    /// Number of instants [`Self::iter_steps`] yields for `step`.
    pub fn step_count(&self, step: SimDuration) -> usize {
        assert!(step.as_secs() > 0, "step must be positive");
        let len = (self.end - self.start).as_secs();
        (len + step.as_secs() - 1).div_euclid(step.as_secs()).max(0) as usize
    }

    /// Splits the period into `n` equal-length sub-periods (the final one
    /// absorbs rounding). Panics when `n == 0` or the period is empty.
    pub fn split(&self, n: usize) -> Vec<Period> {
        assert!(n > 0, "cannot split into zero parts");
        assert!(!self.is_empty(), "cannot split an empty period");
        let total = self.duration().as_secs();
        let base = total / n as i64;
        let mut out = Vec::with_capacity(n);
        let mut cursor = self.start;
        for i in 0..n {
            let end = if i + 1 == n {
                self.end
            } else {
                cursor + SimDuration::from_secs(base)
            };
            out.push(Period::new(cursor, end));
            cursor = end;
        }
        out
    }
}

impl fmt::Display for Period {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// Iterator of equally spaced instants within a [`Period`].
#[derive(Clone, Debug)]
pub struct StepIter {
    next: Timestamp,
    end: Timestamp,
    step: SimDuration,
}

impl Iterator for StepIter {
    type Item = Timestamp;

    fn next(&mut self) -> Option<Timestamp> {
        if self.next >= self.end {
            return None;
        }
        let out = self.next;
        self.next += self.step;
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.next >= self.end {
            return (0, Some(0));
        }
        let remaining = (self.end - self.next).as_secs();
        let n = (remaining + self.step.as_secs() - 1) / self.step.as_secs();
        (n as usize, Some(n as usize))
    }
}

impl ExactSizeIterator for StepIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions_round_trip() {
        assert_eq!(SimDuration::from_hours(1.0), SimDuration::HOUR);
        assert_eq!(SimDuration::from_days(1).as_hours(), 24.0);
        assert_eq!(SimDuration::from_minutes(90).as_hours(), 1.5);
        assert_eq!(SimDuration::from_years(1.0).as_days(), 365.0);
        assert!((SimDuration::from_years(5.0).as_years() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::HOUR + SimDuration::MINUTE * 30;
        assert_eq!(d.as_secs(), 5_400);
        assert_eq!((d - SimDuration::HOUR).as_secs(), 1_800);
        assert_eq!((d / 2).as_secs(), 2_700);
        assert!((-d).is_negative());
        assert!(SimDuration::ZERO.is_zero());
    }

    #[test]
    fn duration_ratio() {
        // The paper's amortisation example: 6 months of a 5-year life.
        let half_year = SimDuration::from_days(365 / 2);
        let five_years = SimDuration::from_years(5.0);
        let r = half_year.ratio_of(five_years);
        assert!((r - 0.0997).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn ratio_of_zero_panics() {
        let _ = SimDuration::HOUR.ratio_of(SimDuration::ZERO);
    }

    #[test]
    fn duration_display() {
        assert_eq!(SimDuration::from_secs(45).to_string(), "45s");
        assert_eq!(SimDuration::from_secs(3_725).to_string(), "1h02m05s");
        assert_eq!(
            (SimDuration::DAY + SimDuration::HOUR).to_string(),
            "1d01h00m00s"
        );
        assert_eq!((-SimDuration::MINUTE).to_string(), "-1m00s");
    }

    #[test]
    fn timestamp_fields() {
        let t = Timestamp::from_secs(2 * SECS_PER_DAY + 3 * SECS_PER_HOUR + 15 * 60);
        assert_eq!(t.day_index(), 2);
        assert_eq!(t.second_of_day(), 3 * SECS_PER_HOUR + 900);
        assert!((t.hour_of_day() - 3.25).abs() < 1e-12);
        assert_eq!(t.settlement_period(), 6);
        assert_eq!(t.to_string(), "d2+03:15:00");
    }

    #[test]
    fn timestamp_negative_day_floor() {
        let t = Timestamp::from_secs(-1);
        assert_eq!(t.day_index(), -1);
        assert_eq!(t.second_of_day(), SECS_PER_DAY - 1);
    }

    #[test]
    fn day_of_week_epoch_is_tuesday() {
        // Epoch = 2022-11-01, a Tuesday → index 1 (0 = Monday).
        assert_eq!(Timestamp::EPOCH.day_of_week(), 1);
        assert!(!Timestamp::EPOCH.is_weekend());
        // 2022-11-05 was a Saturday.
        assert_eq!(Timestamp::from_days(4).day_of_week(), 5);
        assert!(Timestamp::from_days(4).is_weekend());
        assert!(Timestamp::from_days(5).is_weekend());
        assert!(!Timestamp::from_days(6).is_weekend());
    }

    #[test]
    fn floor_and_ceil_to_slot_boundaries() {
        let step = SimDuration::SETTLEMENT_PERIOD;
        let t = Timestamp::from_secs(1_800 * 3 + 411);
        assert_eq!(t.floor_to(step), Timestamp::from_secs(1_800 * 3));
        assert_eq!(t.ceil_to(step), Timestamp::from_secs(1_800 * 4));
        // Exact boundaries are fixed points of both.
        let b = Timestamp::from_secs(1_800 * 7);
        assert_eq!(b.floor_to(step), b);
        assert_eq!(b.ceil_to(step), b);
        // Negative instants floor towards negative infinity.
        let n = Timestamp::from_secs(-1);
        assert_eq!(n.floor_to(step), Timestamp::from_secs(-1_800));
        assert_eq!(n.ceil_to(step), Timestamp::EPOCH);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn floor_to_rejects_zero_step() {
        let _ = Timestamp::EPOCH.floor_to(SimDuration::ZERO);
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::EPOCH + SimDuration::HOUR;
        assert_eq!(t.as_secs(), 3_600);
        assert_eq!(t - Timestamp::EPOCH, SimDuration::HOUR);
        assert_eq!((t - SimDuration::HOUR), Timestamp::EPOCH);
        let mut u = t;
        u += SimDuration::HOUR;
        assert_eq!(u.as_hours(), 2.0);
    }

    #[test]
    fn period_basics() {
        let p = Period::snapshot_24h();
        assert_eq!(p.duration(), SimDuration::DAY);
        assert!(p.contains(Timestamp::EPOCH));
        assert!(!p.contains(Timestamp::from_days(1))); // half-open
        assert!(!p.is_empty());
        assert_eq!(Period::day(3).start(), Timestamp::from_days(3));
    }

    #[test]
    #[should_panic(expected = "must not precede")]
    fn period_rejects_reversed_bounds() {
        let _ = Period::new(Timestamp::from_secs(10), Timestamp::from_secs(5));
    }

    #[test]
    fn period_intersection() {
        let a = Period::new(Timestamp::from_secs(0), Timestamp::from_secs(100));
        let b = Period::new(Timestamp::from_secs(50), Timestamp::from_secs(150));
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.start().as_secs(), 50);
        assert_eq!(i.end().as_secs(), 100);
        assert_eq!(a.overlap_fraction(&b), 0.5);

        let c = Period::new(Timestamp::from_secs(200), Timestamp::from_secs(300));
        assert!(a.intersect(&c).is_none());
        assert_eq!(a.overlap_fraction(&c), 0.0);
    }

    #[test]
    fn adjacent_periods_do_not_intersect() {
        let a = Period::day(0);
        let b = Period::day(1);
        assert!(a.intersect(&b).is_none());
    }

    #[test]
    fn empty_period_overlaps_nothing() {
        let e = Period::new(Timestamp::from_secs(5), Timestamp::from_secs(5));
        assert!(e.is_empty());
        assert_eq!(e.overlap_fraction(&Period::snapshot_24h()), 0.0);
    }

    #[test]
    fn step_iteration_counts() {
        let p = Period::starting_at(Timestamp::EPOCH, SimDuration::from_secs(100));
        let steps: Vec<_> = p.iter_steps(SimDuration::from_secs(30)).collect();
        assert_eq!(steps.len(), 4); // 0, 30, 60, 90
        assert_eq!(p.step_count(SimDuration::from_secs(30)), 4);
        assert_eq!(steps[3].as_secs(), 90);

        // Exact division: endpoint excluded.
        let q = Period::starting_at(Timestamp::EPOCH, SimDuration::from_secs(90));
        assert_eq!(q.step_count(SimDuration::from_secs(30)), 3);
        assert_eq!(q.iter_steps(SimDuration::from_secs(30)).count(), 3);
    }

    #[test]
    fn step_iter_size_hint_is_exact() {
        let p = Period::snapshot_24h();
        let it = p.iter_steps(SimDuration::from_secs(30));
        assert_eq!(it.size_hint().0, 2_880);
        assert_eq!(it.count(), 2_880);
    }

    #[test]
    fn split_covers_period_exactly() {
        let p = Period::starting_at(Timestamp::EPOCH, SimDuration::from_secs(100));
        let parts = p.split(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].start(), p.start());
        assert_eq!(parts[2].end(), p.end());
        for w in parts.windows(2) {
            assert_eq!(w[0].end(), w[1].start());
        }
        let total: i64 = parts.iter().map(|q| q.duration().as_secs()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn settlement_periods_tile_the_day() {
        let day = Period::snapshot_24h();
        let count = day.step_count(SimDuration::SETTLEMENT_PERIOD);
        assert_eq!(count, SETTLEMENT_PERIODS_PER_DAY);
        let last = day
            .iter_steps(SimDuration::SETTLEMENT_PERIOD)
            .last()
            .unwrap();
        assert_eq!(last.settlement_period(), 47);
    }
}
