//! Property-based tests for the dimensional-quantity laws.

use iriscast_units::prelude::*;
use iriscast_units::{format_grouped, SimDuration};
use proptest::prelude::*;

/// Reasonable magnitudes for the domain: node watts up to grid gigawatts.
fn power_watts() -> impl Strategy<Value = f64> {
    0.0..5e9f64
}

fn energy_kwh() -> impl Strategy<Value = f64> {
    0.0..1e7f64
}

fn intensity_g_per_kwh() -> impl Strategy<Value = f64> {
    0.0..1_200.0f64
}

fn duration_secs() -> impl Strategy<Value = i64> {
    1i64..(400 * 86_400)
}

proptest! {
    /// kWh → J → kWh is exact to floating-point round-off.
    #[test]
    fn energy_conversion_round_trip(kwh in energy_kwh()) {
        let e = Energy::from_kilowatt_hours(kwh);
        prop_assert!((e.kilowatt_hours() - kwh).abs() <= kwh.abs() * 1e-12 + 1e-12);
        let e2 = Energy::from_joules(e.joules());
        prop_assert_eq!(e, e2);
    }

    /// Power → (×Δt) → Energy → (÷Δt) → Power round-trips.
    #[test]
    fn power_energy_round_trip(w in power_watts(), secs in duration_secs()) {
        let p = Power::from_watts(w);
        let d = SimDuration::from_secs(secs);
        let e = p * d;
        let back = e.mean_power_over(d);
        prop_assert!((back.watts() - w).abs() <= w.abs() * 1e-12 + 1e-9);
    }

    /// Energy scales linearly in duration: P×(a+b) = P×a + P×b.
    #[test]
    fn energy_additive_in_time(w in power_watts(), a in duration_secs(), b in duration_secs()) {
        let p = Power::from_watts(w);
        let lhs = p * (SimDuration::from_secs(a) + SimDuration::from_secs(b));
        let rhs = p * SimDuration::from_secs(a) + p * SimDuration::from_secs(b);
        prop_assert!((lhs.joules() - rhs.joules()).abs() <= lhs.joules().abs() * 1e-12 + 1e-6);
    }

    /// Carbon is monotone in both energy and intensity.
    #[test]
    fn carbon_monotone(
        e1 in energy_kwh(), e2 in energy_kwh(),
        ci1 in intensity_g_per_kwh(), ci2 in intensity_g_per_kwh(),
    ) {
        let (elo, ehi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        let (clo, chi) = if ci1 <= ci2 { (ci1, ci2) } else { (ci2, ci1) };
        let a = Energy::from_kilowatt_hours(elo) * CarbonIntensity::from_grams_per_kwh(clo);
        let b = Energy::from_kilowatt_hours(ehi) * CarbonIntensity::from_grams_per_kwh(chi);
        prop_assert!(a.grams() <= b.grams() + 1e-9);
    }

    /// PUE round-trip: infer_it_energy(apply(e)) == e.
    #[test]
    fn pue_round_trip(kwh in energy_kwh(), pue in 1.0..3.0f64) {
        let p = Pue::new(pue).unwrap();
        let it = Energy::from_kilowatt_hours(kwh);
        let back = p.infer_it_energy(p.apply(it));
        prop_assert!((back.kilowatt_hours() - kwh).abs() <= kwh.abs() * 1e-12 + 1e-9);
        // Overhead + IT = total.
        let total = p.apply(it);
        let sum = it + p.overhead(it);
        prop_assert!((total.joules() - sum.joules()).abs() <= total.joules().abs() * 1e-12 + 1e-6);
    }

    /// Element-wise TriEstimate ops preserve ordering for ordered inputs
    /// and non-negative scale factors.
    #[test]
    fn tri_estimate_ordering_preserved(
        a in 0.0..1e6f64, b in 0.0..1e6f64, c in 0.0..1e6f64,
        d in 0.0..1e6f64, e in 0.0..1e6f64, f in 0.0..1e6f64,
        k in 0.0..100.0f64,
    ) {
        let mut x = [a, b, c];
        let mut y = [d, e, f];
        x.sort_by(f64::total_cmp);
        y.sort_by(f64::total_cmp);
        let t1 = TriEstimate::checked(x[0], x[1], x[2]).unwrap();
        let t2 = TriEstimate::checked(y[0], y[1], y[2]).unwrap();
        prop_assert!((t1 + t2).is_ordered());
        prop_assert!((t1 * k).is_ordered());
    }

    /// combine_extremes always yields an ordered envelope that contains
    /// every pairing, for an arbitrary combination function.
    #[test]
    fn combine_extremes_envelope(
        a in -1e6..1e6f64, b in -1e6..1e6f64, c in -1e6..1e6f64,
        d in -1e6..1e6f64, e in -1e6..1e6f64, f in -1e6..1e6f64,
    ) {
        let mut x = [a, b, c];
        let mut y = [d, e, f];
        x.sort_by(f64::total_cmp);
        y.sort_by(f64::total_cmp);
        let t1 = TriEstimate::new(x[0], x[1], x[2]);
        let t2 = TriEstimate::new(y[0], y[1], y[2]);
        // An anti-monotone, nonlinear combination.
        let comb = |p: f64, q: f64| p - q * q.signum();
        let env = t1.combine_extremes(t2, comb);
        prop_assert!(env.low <= env.high);
        for &p in x.iter() {
            for &q in y.iter() {
                let v = comb(p, q);
                prop_assert!(v >= env.low - 1e-9 && v <= env.high + 1e-9);
            }
        }
    }

    /// Period splitting covers the whole period with no gaps or overlaps.
    #[test]
    fn period_split_partition(len in 1i64..10_000_000, n in 1usize..64) {
        let p = Period::starting_at(Timestamp::EPOCH, SimDuration::from_secs(len));
        let parts = p.split(n);
        prop_assert_eq!(parts.len(), n);
        prop_assert_eq!(parts[0].start(), p.start());
        prop_assert_eq!(parts[n - 1].end(), p.end());
        for w in parts.windows(2) {
            prop_assert_eq!(w[0].end(), w[1].start());
        }
        let total: i64 = parts.iter().map(|q| q.duration().as_secs()).sum();
        prop_assert_eq!(total, len);
    }

    /// step_count matches the number of instants iter_steps yields.
    #[test]
    fn step_count_matches_iteration(len in 1i64..2_000_000, step in 1i64..100_000) {
        let p = Period::starting_at(Timestamp::EPOCH, SimDuration::from_secs(len));
        let step = SimDuration::from_secs(step);
        prop_assert_eq!(p.step_count(step), p.iter_steps(step).count());
    }

    /// Timestamp day/second-of-day decomposition reassembles exactly.
    #[test]
    fn timestamp_decomposition(secs in -(1000i64 * 86_400)..(1000 * 86_400)) {
        let t = Timestamp::from_secs(secs);
        prop_assert_eq!(t.day_index() * 86_400 + t.second_of_day(), secs);
        prop_assert!(t.second_of_day() >= 0 && t.second_of_day() < 86_400);
        prop_assert!(t.settlement_period() < 48);
        prop_assert!(t.day_of_week() < 7);
    }

    /// Grouped formatting re-parses to the rounded value.
    #[test]
    fn grouped_format_reparses(v in -1e12..1e12f64, d in 0usize..4) {
        let s = format_grouped(v, d);
        let cleaned: String = s.chars().filter(|&c| c != ',').collect();
        let parsed: f64 = cleaned.parse().unwrap();
        let expected: f64 = format!("{v:.d$}").parse().unwrap();
        prop_assert_eq!(parsed, expected);
    }

    /// Overlap fraction is symmetric under scaling and bounded in [0, 1].
    #[test]
    fn overlap_fraction_bounded(
        s1 in 0i64..1_000_000, l1 in 1i64..1_000_000,
        s2 in 0i64..1_000_000, l2 in 1i64..1_000_000,
    ) {
        let a = Period::starting_at(Timestamp::from_secs(s1), SimDuration::from_secs(l1));
        let b = Period::starting_at(Timestamp::from_secs(s2), SimDuration::from_secs(l2));
        let f = a.overlap_fraction(&b);
        prop_assert!((0.0..=1.0).contains(&f));
        // Self-overlap is exactly 1.
        prop_assert_eq!(a.overlap_fraction(&a), 1.0);
    }
}
