//! Event-driven cluster simulation.

use crate::error::{WorkloadError, WorkloadResult};
use crate::scheduler::{Scheduler, SchedulerContext};
use crate::Job;
use iriscast_grid::IntensitySeries;
use iriscast_telemetry::TraceUtilization;
use iriscast_units::{Period, SimDuration, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A job placed on specific nodes at a specific time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduledJob {
    /// The job as submitted.
    pub job: Job,
    /// Actual start instant.
    pub start: Timestamp,
    /// Completion instant (`start + runtime`).
    pub end: Timestamp,
    /// Node ids occupied (lowest-free-first assignment).
    pub node_ids: Vec<u32>,
}

impl ScheduledJob {
    /// Queueing delay experienced.
    pub fn wait(&self) -> SimDuration {
        self.start - self.job.submit
    }
}

/// Result of playing a workload through a policy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Jobs that started, in start order.
    pub scheduled: Vec<ScheduledJob>,
    /// Jobs still queued when the simulation window closed.
    pub unstarted: Vec<Job>,
    /// Cluster size.
    pub total_nodes: u32,
    /// Simulated window.
    pub period: Period,
}

impl SimOutcome {
    /// Node-time-weighted mean utilisation of the cluster over the window:
    /// busy node-seconds (weighted by each job's driven CPU utilisation)
    /// over total capacity. Occupancy outside the window is clipped.
    pub fn mean_utilization(&self) -> f64 {
        let capacity = i64::from(self.total_nodes) * self.period.duration().as_secs();
        if capacity == 0 {
            return 0.0;
        }
        let busy: f64 = self
            .scheduled
            .iter()
            .map(|s| {
                let span = Period::new(s.start, s.end);
                let overlap =
                    span.duration().as_secs() as f64 * span.overlap_fraction(&self.period);
                overlap * f64::from(s.job.nodes) * s.job.cpu_utilization
            })
            .sum();
        busy / capacity as f64
    }

    /// Fraction of node-seconds occupied (regardless of the CPU level the
    /// job drives).
    pub fn occupancy(&self) -> f64 {
        let capacity = i64::from(self.total_nodes) * self.period.duration().as_secs();
        if capacity == 0 {
            return 0.0;
        }
        let busy: f64 = self
            .scheduled
            .iter()
            .map(|s| {
                let span = Period::new(s.start, s.end);
                span.duration().as_secs() as f64
                    * span.overlap_fraction(&self.period)
                    * f64::from(s.job.nodes)
            })
            .sum();
        busy / capacity as f64
    }

    /// Busy-node count per slot of width `step` over the window — the
    /// cluster-occupancy timeline operators plot ("usage questions", the
    /// paper's future work).
    pub fn busy_nodes_series(&self, step: SimDuration) -> Vec<u32> {
        let slots = self.period.step_count(step);
        let mut busy = vec![0u32; slots];
        for s in &self.scheduled {
            let from = (s.start - self.period.start()).as_secs();
            let to = (s.end - self.period.start()).as_secs();
            let window = self.period.duration().as_secs();
            let first = from.clamp(0, window).div_euclid(step.as_secs()) as usize;
            let last = to.clamp(0, window).div_euclid(step.as_secs()) as usize;
            for slot in busy.iter_mut().take(last.min(slots)).skip(first) {
                *slot += s.job.nodes;
            }
        }
        busy
    }

    /// Converts the schedule into a per-node utilisation trace sampled
    /// every `step`, ready for the telemetry collector.
    pub fn to_trace(&self, step: SimDuration) -> TraceUtilization {
        let slots = self.period.step_count(step);
        let mut traces = vec![vec![0.0f64; slots]; self.total_nodes as usize];
        for s in &self.scheduled {
            let from = (s.start - self.period.start()).as_secs();
            let to = (s.end - self.period.start()).as_secs();
            let window = self.period.duration().as_secs();
            let first = from.clamp(0, window).div_euclid(step.as_secs()) as usize;
            let last = to.clamp(0, window).div_euclid(step.as_secs()) as usize;
            for &node in &s.node_ids {
                let trace = &mut traces[node as usize];
                for slot in trace.iter_mut().take(last.min(slots)).skip(first) {
                    *slot = s.job.cpu_utilization;
                }
            }
        }
        TraceUtilization::new(self.period, step, traces)
    }
}

/// The event-driven simulator: a fixed pool of identical nodes.
#[derive(Clone, Debug)]
pub struct ClusterSim {
    nodes: u32,
}

impl ClusterSim {
    /// A cluster of `nodes` identical nodes.
    ///
    /// Panics on an empty cluster; see [`ClusterSim::try_new`].
    pub fn new(nodes: u32) -> Self {
        Self::try_new(nodes).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`ClusterSim::new`]: refuses `nodes == 0` with
    /// [`WorkloadError::EmptyCluster`].
    pub fn try_new(nodes: u32) -> WorkloadResult<Self> {
        if nodes == 0 {
            return Err(WorkloadError::EmptyCluster);
        }
        Ok(ClusterSim { nodes })
    }

    /// Plays `jobs` through `policy` over `window` with no carbon signal.
    pub fn run(&self, jobs: Vec<Job>, policy: &mut dyn Scheduler, window: Period) -> SimOutcome {
        self.run_with_intensity(jobs, policy, window, None)
    }

    /// Plays `jobs` through `policy` over `window`, exposing `intensity`
    /// to the policy (for carbon-aware scheduling).
    ///
    /// Jobs must be sorted by submit time (the generator guarantees it);
    /// panics otherwise — see [`ClusterSim::try_run_with_intensity`].
    pub fn run_with_intensity(
        &self,
        jobs: Vec<Job>,
        policy: &mut dyn Scheduler,
        window: Period,
        intensity: Option<&IntensitySeries>,
    ) -> SimOutcome {
        self.try_run_with_intensity(jobs, policy, window, intensity)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`ClusterSim::run`].
    pub fn try_run(
        &self,
        jobs: Vec<Job>,
        policy: &mut dyn Scheduler,
        window: Period,
    ) -> WorkloadResult<SimOutcome> {
        self.try_run_with_intensity(jobs, policy, window, None)
    }

    /// Fallible form of [`ClusterSim::run_with_intensity`]: refuses an
    /// unsorted job stream with [`WorkloadError::UnsortedJobs`] naming
    /// the first out-of-order position.
    pub fn try_run_with_intensity(
        &self,
        mut jobs: Vec<Job>,
        policy: &mut dyn Scheduler,
        window: Period,
        intensity: Option<&IntensitySeries>,
    ) -> WorkloadResult<SimOutcome> {
        if let Some(i) = jobs.windows(2).position(|w| w[0].submit > w[1].submit) {
            return Err(WorkloadError::UnsortedJobs { index: i + 1 });
        }
        // Free pool: lowest node id first for reproducible placement.
        let mut free: BTreeSet<u32> = (0..self.nodes).collect();
        let mut queue: Vec<Job> = Vec::new();
        // Running jobs as (end, nodes, node_ids-index-into-scheduled).
        let mut running: Vec<(Timestamp, u32)> = Vec::new();
        let mut running_nodes: Vec<(Timestamp, Vec<u32>)> = Vec::new();
        let mut scheduled: Vec<ScheduledJob> = Vec::new();

        let mut arrivals = jobs.drain(..).peekable();
        let mut now = window.start();

        loop {
            // Ingest arrivals due now.
            while let Some(j) = arrivals.next_if(|j| j.submit <= now) {
                queue.push(j);
            }
            // Release completions due now.
            let mut i = 0;
            while i < running_nodes.len() {
                if running_nodes[i].0 <= now {
                    let (_, ids) = running_nodes.swap_remove(i);
                    free.extend(ids);
                } else {
                    i += 1;
                }
            }
            running.clear();
            running.extend(
                running_nodes
                    .iter()
                    .map(|(end, ids)| (*end, ids.len() as u32)),
            );
            running.sort_by_key(|(end, _)| *end);

            // Let the policy start as much as it wants at this instant.
            loop {
                let ctx = SchedulerContext {
                    free_nodes: free.len() as u32,
                    total_nodes: self.nodes,
                    now,
                    running: &running,
                    intensity,
                };
                let Some(idx) = policy.pick(&queue, &ctx) else {
                    break;
                };
                let job = queue.remove(idx);
                assert!(
                    job.nodes as usize <= free.len(),
                    "policy {} oversubscribed the cluster",
                    policy.name()
                );
                let node_ids: Vec<u32> = free.iter().copied().take(job.nodes as usize).collect();
                for id in &node_ids {
                    free.remove(id);
                }
                let end = now + job.runtime;
                running_nodes.push((end, node_ids.clone()));
                running.push((end, job.nodes));
                running.sort_by_key(|(e, _)| *e);
                scheduled.push(ScheduledJob {
                    start: now,
                    end,
                    node_ids,
                    job,
                });
            }

            // Advance to the next event: arrival, completion, or (when a
            // carbon signal exists) the next settlement boundary, so
            // deferred jobs re-evaluate as the grid changes.
            let mut next: Option<Timestamp> = None;
            let mut consider = |t: Timestamp| {
                if t > now && t < window.end() {
                    next = Some(match next {
                        Some(n) => n.min(t),
                        None => t,
                    });
                }
            };
            if let Some(j) = arrivals.peek() {
                consider(j.submit.max(window.start()));
            }
            for (end, _) in &running {
                consider(*end);
            }
            if intensity.is_some() && !queue.is_empty() {
                let slot = SimDuration::SETTLEMENT_PERIOD;
                consider(now.floor_to(slot) + slot);
            }
            match next {
                Some(t) => now = t,
                None => break,
            }
        }

        Ok(SimOutcome {
            scheduled,
            unstarted: queue,
            total_nodes: self.nodes,
            period: window,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{CarbonAwareScheduler, EasyBackfillScheduler, FcfsScheduler};
    use crate::{generate, WorkloadConfig};
    use iriscast_units::CarbonIntensity;

    fn day() -> Period {
        Period::snapshot_24h()
    }

    fn job(id: u64, submit_h: f64, runtime_h: f64, nodes: u32) -> Job {
        Job::new(
            id,
            Timestamp::from_hours(submit_h),
            SimDuration::from_hours(runtime_h),
            nodes,
        )
    }

    #[test]
    fn single_job_runs_immediately() {
        let sim = ClusterSim::new(4);
        let outcome = sim.run(vec![job(0, 1.0, 2.0, 2)], &mut FcfsScheduler, day());
        assert_eq!(outcome.scheduled.len(), 1);
        let s = &outcome.scheduled[0];
        assert_eq!(s.start, Timestamp::from_hours(1.0));
        assert_eq!(s.end, Timestamp::from_hours(3.0));
        assert_eq!(s.node_ids, vec![0, 1]);
        assert_eq!(s.wait(), SimDuration::ZERO);
        assert!(outcome.unstarted.is_empty());
    }

    #[test]
    fn jobs_queue_when_cluster_full() {
        let sim = ClusterSim::new(2);
        let jobs = vec![job(0, 0.0, 4.0, 2), job(1, 1.0, 1.0, 2)];
        let outcome = sim.run(jobs, &mut FcfsScheduler, day());
        assert_eq!(outcome.scheduled.len(), 2);
        // Second job waits for the first to finish at t=4h.
        assert_eq!(outcome.scheduled[1].start, Timestamp::from_hours(4.0));
        assert_eq!(outcome.scheduled[1].wait(), SimDuration::from_hours(3.0));
    }

    #[test]
    fn nodes_never_oversubscribed() {
        let sim = ClusterSim::new(16);
        let jobs = generate(&WorkloadConfig::batch_hpc(), day(), 3);
        let outcome = sim.run(jobs, &mut EasyBackfillScheduler, day());
        // Reconstruct per-node interval sets and assert no overlap.
        let mut by_node: Vec<Vec<(Timestamp, Timestamp)>> = vec![Vec::new(); 16];
        for s in &outcome.scheduled {
            for &n in &s.node_ids {
                by_node[n as usize].push((s.start, s.end));
            }
        }
        for intervals in by_node.iter_mut() {
            intervals.sort();
            for w in intervals.windows(2) {
                assert!(
                    w[0].1 <= w[1].0,
                    "node double-booked: {:?} overlaps {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn backfill_beats_fcfs_on_small_job_waits() {
        // A blocked wide head with many small jobs behind it: classic
        // backfill win. Everything finishes inside the day either way, so
        // occupancy ties — the improvement is in queueing delay.
        let mut jobs = vec![job(0, 0.0, 8.0, 7)]; // occupies 7 of 8 nodes
        jobs.push(job(1, 0.1, 10.0, 8)); // wide head, blocks FCFS
        for i in 2..40 {
            jobs.push(job(i, 0.2, 0.5, 1)); // small fry
        }
        let sim = ClusterSim::new(8);
        let fcfs = sim.run(jobs.clone(), &mut FcfsScheduler, day());
        let easy = sim.run(jobs, &mut EasyBackfillScheduler, day());
        let mean_small_wait = |o: &SimOutcome| {
            let small: Vec<_> = o.scheduled.iter().filter(|s| s.job.nodes == 1).collect();
            small.iter().map(|s| s.wait().as_hours()).sum::<f64>() / small.len() as f64
        };
        let w_fcfs = mean_small_wait(&fcfs);
        let w_easy = mean_small_wait(&easy);
        assert!(
            w_easy < w_fcfs - 2.0,
            "easy mean small-job wait {w_easy:.2} h not well below fcfs {w_fcfs:.2} h"
        );
        // Some small jobs must have started before the head did.
        let head_start_easy = easy
            .scheduled
            .iter()
            .find(|s| s.job.nodes == 8)
            .unwrap()
            .start;
        assert!(easy
            .scheduled
            .iter()
            .any(|s| s.job.nodes == 1 && s.start < head_start_easy));
    }

    #[test]
    fn unstarted_jobs_reported() {
        let sim = ClusterSim::new(1);
        // Far more work than one node can do in a day.
        let jobs: Vec<Job> = (0..30).map(|i| job(i, 0.0, 2.0, 1)).collect();
        let outcome = sim.run(jobs, &mut FcfsScheduler, day());
        assert!(!outcome.unstarted.is_empty());
        assert_eq!(outcome.scheduled.len() + outcome.unstarted.len(), 30);
    }

    #[test]
    fn trace_reflects_schedule() {
        let sim = ClusterSim::new(2);
        let outcome = sim.run(
            vec![job(0, 0.0, 12.0, 1).with_utilization(0.8)],
            &mut FcfsScheduler,
            day(),
        );
        let trace = outcome.to_trace(SimDuration::from_hours(1.0));
        use iriscast_telemetry::UtilizationSource;
        // Node 0 busy at 0.8 until noon, idle after; node 1 always idle.
        assert_eq!(trace.utilization(0, Timestamp::from_hours(6.0)), 0.8);
        assert_eq!(trace.utilization(0, Timestamp::from_hours(13.0)), 0.0);
        assert_eq!(trace.utilization(1, Timestamp::from_hours(6.0)), 0.0);
        // Mean over the day: 0.8 × 12/24 = 0.4.
        assert!((trace.node_mean(0) - 0.4).abs() < 1e-9);
    }

    #[test]
    fn busy_nodes_series_tracks_schedule() {
        let sim = ClusterSim::new(4);
        let outcome = sim.run(
            vec![job(0, 0.0, 6.0, 2), job(1, 3.0, 6.0, 1)],
            &mut FcfsScheduler,
            day(),
        );
        let busy = outcome.busy_nodes_series(SimDuration::from_hours(1.0));
        assert_eq!(busy.len(), 24);
        assert_eq!(busy[0], 2); // only job 0
        assert_eq!(busy[4], 3); // both
        assert_eq!(busy[7], 1); // only job 1
        assert_eq!(busy[12], 0); // all done

        // Never exceeds the cluster.
        assert!(busy.iter().all(|&b| b <= 4));
    }

    #[test]
    fn utilization_and_occupancy() {
        let sim = ClusterSim::new(4);
        let outcome = sim.run(
            vec![job(0, 0.0, 24.0, 2).with_utilization(0.5)],
            &mut FcfsScheduler,
            day(),
        );
        assert!((outcome.occupancy() - 0.5).abs() < 1e-9);
        assert!((outcome.mean_utilization() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn carbon_aware_shifts_work_to_clean_window() {
        // Grid: dirty until noon, clean after.
        let mut values = vec![300.0; 24];
        values.extend(vec![50.0; 24]);
        let series = IntensitySeries::new(
            Timestamp::EPOCH,
            SimDuration::SETTLEMENT_PERIOD,
            values
                .iter()
                .map(|&g| CarbonIntensity::from_grams_per_kwh(g))
                .collect(),
        );
        let elastic = job(0, 1.0, 2.0, 1).deferrable_until(Timestamp::from_hours(20.0));
        let sim = ClusterSim::new(4);
        let mut policy =
            CarbonAwareScheduler::new(FcfsScheduler, CarbonIntensity::from_grams_per_kwh(150.0));
        let outcome = sim.run_with_intensity(vec![elastic], &mut policy, day(), Some(&series));
        assert_eq!(outcome.scheduled.len(), 1);
        // Started at the noon boundary, not at submit (1 h).
        assert_eq!(outcome.scheduled[0].start, Timestamp::from_hours(12.0));
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let jobs = generate(&WorkloadConfig::batch_hpc(), day(), 99);
        let sim = ClusterSim::new(32);
        let a = sim.run(jobs.clone(), &mut EasyBackfillScheduler, day());
        let b = sim.run(jobs, &mut EasyBackfillScheduler, day());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "sorted by submit")]
    fn unsorted_jobs_rejected() {
        let sim = ClusterSim::new(4);
        let jobs = vec![job(0, 2.0, 1.0, 1), job(1, 1.0, 1.0, 1)];
        let _ = sim.run(jobs, &mut FcfsScheduler, day());
    }

    #[test]
    fn try_run_refuses_unsorted_jobs_with_index() {
        let sim = ClusterSim::new(4);
        let jobs = vec![
            job(0, 1.0, 1.0, 1),
            job(1, 3.0, 1.0, 1),
            job(2, 2.0, 1.0, 1),
        ];
        assert_eq!(
            sim.try_run(jobs, &mut FcfsScheduler, day()),
            Err(WorkloadError::UnsortedJobs { index: 2 })
        );
    }

    #[test]
    fn try_new_refuses_empty_cluster() {
        assert_eq!(
            ClusterSim::try_new(0).err(),
            Some(WorkloadError::EmptyCluster)
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn new_still_panics_on_empty_cluster() {
        let _ = ClusterSim::new(0);
    }

    #[test]
    fn try_run_matches_run_on_valid_input() {
        let jobs = generate(&WorkloadConfig::batch_hpc(), day(), 17);
        let sim = ClusterSim::new(32);
        let a = sim
            .try_run(jobs.clone(), &mut EasyBackfillScheduler, day())
            .unwrap();
        let b = sim.run(jobs, &mut EasyBackfillScheduler, day());
        assert_eq!(a, b);
    }

    #[test]
    fn realistic_workload_achieves_reasonable_utilization() {
        let jobs = generate(&WorkloadConfig::batch_hpc(), day(), 21);
        let load = crate::generate::offered_load(&jobs, 64, day());
        let sim = ClusterSim::new(64);
        let outcome = sim.run(jobs, &mut EasyBackfillScheduler, day());
        // A saturating workload should keep a backfilling cluster busy.
        assert!(
            outcome.occupancy() > (load * 0.55).min(0.80),
            "occupancy {:.2} too low for offered load {:.2}",
            outcome.occupancy(),
            load
        );
    }
}
