//! Sampling primitives: the distributions HPC workload models need.
//!
//! `rand` 0.8 without `rand_distr` provides only uniform sampling; the
//! standard workload shapes (Poisson arrivals → exponential gaps,
//! lognormal runtimes) are implemented here directly, keeping the
//! dependency set to the sanctioned list.
//!
//! Invalid parameters are refused as [`WorkloadError`] values rather
//! than panics — config comes from users, and a bad spread or mean
//! should surface as a matchable error at the workload boundary.

use crate::error::{WorkloadError, WorkloadResult};
use rand::Rng;

/// Standard normal sample via the Box–Muller transform.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal sample with the given mean and standard deviation.
///
/// Refuses a negative `sd` with [`WorkloadError::NegativeSpread`].
pub fn normal(rng: &mut impl Rng, mean: f64, sd: f64) -> WorkloadResult<f64> {
    if sd < 0.0 {
        return Err(WorkloadError::NegativeSpread { spread: sd });
    }
    Ok(mean + sd * standard_normal(rng))
}

/// Lognormal sample parameterised by the *median* (`exp(μ)`) and shape
/// `sigma` — the natural parameterisation for runtimes ("median job runs
/// 20 minutes, spread over decades").
///
/// Refuses a non-positive `median`
/// ([`WorkloadError::NonPositiveMedian`]) and a negative `sigma`
/// ([`WorkloadError::NegativeSpread`]).
pub fn lognormal_median(rng: &mut impl Rng, median: f64, sigma: f64) -> WorkloadResult<f64> {
    if median <= 0.0 {
        return Err(WorkloadError::NonPositiveMedian { median });
    }
    if sigma < 0.0 {
        return Err(WorkloadError::NegativeSpread { spread: sigma });
    }
    Ok(median * (sigma * standard_normal(rng)).exp())
}

/// Exponential sample with the given mean (inter-arrival gaps of a
/// Poisson process).
///
/// Refuses a non-positive `mean` with [`WorkloadError::NonPositiveMean`].
pub fn exponential(rng: &mut impl Rng, mean: f64) -> WorkloadResult<f64> {
    if mean <= 0.0 {
        return Err(WorkloadError::NonPositiveMean { mean });
    }
    let u: f64 = rng.gen_range(1e-12..1.0);
    Ok(-mean * u.ln())
}

/// Geometric-ish power-of-two job width: 1, 2, 4, … `max`, with smaller
/// widths exponentially more likely (the empirical shape of HPC job-size
/// histograms).
///
/// Refuses `max == 0` with [`WorkloadError::ZeroMaxWidth`].
pub fn power_of_two_width(rng: &mut impl Rng, max: u32) -> WorkloadResult<u32> {
    if max < 1 {
        return Err(WorkloadError::ZeroMaxWidth);
    }
    let levels = 32 - max.leading_zeros(); // ⌊log2(max)⌋ + 1
    let mut width = 1u32;
    for _ in 1..levels {
        // Each doubling happens with probability 0.45 — mildly favouring
        // small jobs while keeping a real large-job tail.
        if rng.gen::<f64>() < 0.45 && width * 2 <= max {
            width *= 2;
        } else {
            break;
        }
    }
    Ok(width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    fn ok<T>(r: WorkloadResult<T>) -> T {
        r.expect("valid parameters")
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| ok(normal(&mut r, 10.0, 3.0))).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn lognormal_median_is_the_median() {
        let mut r = rng();
        let n = 50_001;
        let mut samples: Vec<f64> = (0..n)
            .map(|_| ok(lognormal_median(&mut r, 1_200.0, 1.0)))
            .collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[n / 2];
        assert!(
            (median / 1_200.0 - 1.0).abs() < 0.05,
            "sample median {median}"
        );
        // Lognormal is right-skewed: mean > median.
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!(mean > median * 1.3);
        // All positive.
        assert!(samples[0] > 0.0);
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 50_000;
        let mean = (0..n).map(|_| ok(exponential(&mut r, 90.0))).sum::<f64>() / n as f64;
        assert!((mean - 90.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn widths_are_powers_of_two_within_max() {
        let mut r = rng();
        let mut seen_large = false;
        for _ in 0..10_000 {
            let w = ok(power_of_two_width(&mut r, 64));
            assert!(w.is_power_of_two());
            assert!(w <= 64);
            if w >= 16 {
                seen_large = true;
            }
        }
        assert!(seen_large, "tail of large jobs missing");
    }

    #[test]
    fn width_max_one_is_always_one() {
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(ok(power_of_two_width(&mut r, 1)), 1);
        }
    }

    #[test]
    fn width_respects_non_power_of_two_max() {
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(ok(power_of_two_width(&mut r, 48)) <= 48);
        }
    }

    #[test]
    fn normal_refuses_negative_sd() {
        assert_eq!(
            normal(&mut rng(), 0.0, -1.0),
            Err(WorkloadError::NegativeSpread { spread: -1.0 })
        );
    }

    #[test]
    fn lognormal_refuses_zero_median() {
        assert_eq!(
            lognormal_median(&mut rng(), 0.0, 1.0),
            Err(WorkloadError::NonPositiveMedian { median: 0.0 })
        );
    }

    #[test]
    fn lognormal_refuses_negative_sigma() {
        assert_eq!(
            lognormal_median(&mut rng(), 100.0, -0.5),
            Err(WorkloadError::NegativeSpread { spread: -0.5 })
        );
    }

    #[test]
    fn exponential_refuses_zero_mean() {
        assert_eq!(
            exponential(&mut rng(), 0.0),
            Err(WorkloadError::NonPositiveMean { mean: 0.0 })
        );
    }

    #[test]
    fn width_refuses_zero_max() {
        assert_eq!(
            power_of_two_width(&mut rng(), 0),
            Err(WorkloadError::ZeroMaxWidth)
        );
    }

    #[test]
    fn valid_draws_unchanged_by_error_refactor() {
        // The Ok path must sample bit-identically to the pre-error-type
        // code: same RNG consumption, same arithmetic.
        let mut a = rng();
        let mut b = rng();
        let direct = 1_200.0 * (1.3 * standard_normal(&mut a)).exp();
        assert_eq!(ok(lognormal_median(&mut b, 1_200.0, 1.3)), direct);
    }
}
