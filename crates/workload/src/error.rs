//! Typed errors for workload generation and simulation.
//!
//! Invalid sampler parameters and degenerate simulator inputs are
//! *values* a caller can match on, not panics (the PR 4/6 convention:
//! anything a user can construct from config must surface as a typed
//! refusal). The legacy panicking entry points (`generate`,
//! [`crate::ClusterSim::new`], [`crate::ClusterSim::run`]) remain as
//! thin wrappers over the `try_*` forms for callers that treat bad
//! config as a programming error.

use std::fmt;

/// Result alias for workload APIs.
pub type WorkloadResult<T> = Result<T, WorkloadError>;

/// A refused workload-generation or simulation input.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadError {
    /// A spread parameter (normal `sd`, lognormal `sigma`) was negative.
    NegativeSpread {
        /// The offending spread value.
        spread: f64,
    },
    /// A lognormal median was zero or negative.
    NonPositiveMedian {
        /// The offending median.
        median: f64,
    },
    /// An exponential mean (inter-arrival gap) was zero or negative.
    NonPositiveMean {
        /// The offending mean.
        mean: f64,
    },
    /// A maximum job width of zero nodes.
    ZeroMaxWidth,
    /// A cluster of zero nodes.
    EmptyCluster,
    /// The diurnal modulation fell outside `[0, 1)`.
    InvalidModulation {
        /// The offending modulation strength.
        modulation: f64,
    },
    /// The job stream handed to the simulator was not sorted by submit
    /// time; `index` is the first out-of-order position.
    UnsortedJobs {
        /// Index of the first job that precedes its predecessor.
        index: usize,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::NegativeSpread { spread } => {
                write!(f, "spread parameter must be non-negative, got {spread}")
            }
            WorkloadError::NonPositiveMedian { median } => {
                write!(f, "median must be positive, got {median}")
            }
            WorkloadError::NonPositiveMean { mean } => {
                write!(f, "mean must be positive, got {mean}")
            }
            WorkloadError::ZeroMaxWidth => {
                write!(f, "max width must be at least 1")
            }
            WorkloadError::EmptyCluster => {
                write!(f, "a cluster needs at least one node")
            }
            WorkloadError::InvalidModulation { modulation } => {
                write!(f, "diurnal modulation must lie in [0, 1), got {modulation}")
            }
            WorkloadError::UnsortedJobs { index } => {
                write!(
                    f,
                    "jobs must be sorted by submit time (job {index} precedes its predecessor)"
                )
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offending_value() {
        assert!(WorkloadError::NegativeSpread { spread: -0.5 }
            .to_string()
            .contains("-0.5"));
        assert!(WorkloadError::UnsortedJobs { index: 3 }
            .to_string()
            .contains("job 3"));
        assert!(WorkloadError::EmptyCluster
            .to_string()
            .contains("at least one node"));
    }
}
