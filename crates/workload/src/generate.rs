//! Synthetic workload generation.

use crate::distributions::{exponential, lognormal_median, power_of_two_width};
use crate::error::{WorkloadError, WorkloadResult};
use crate::Job;
use iriscast_units::{Period, SimDuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of a synthetic batch workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Mean inter-arrival gap at the *daily average* rate.
    pub mean_interarrival: SimDuration,
    /// Strength of the diurnal arrival modulation in `[0, 1)`:
    /// `rate(t) = avg_rate × (1 + m·sin(day phase))`.
    pub diurnal_modulation: f64,
    /// Median job runtime.
    pub runtime_median: SimDuration,
    /// Lognormal shape of runtimes (1.0–1.5 matches production traces).
    pub runtime_sigma: f64,
    /// Maximum job width in nodes.
    pub max_nodes: u32,
    /// Mean CPU utilisation a running job drives.
    pub mean_utilization: f64,
    /// Fraction of jobs that tolerate delayed starts.
    pub deferrable_fraction: f64,
    /// Slack granted to deferrable jobs (latest start = submit + slack).
    pub deferral_slack: SimDuration,
    /// Number of distinct users submitting (Zipf-weighted: user 0 submits
    /// the most, the tail trickles). Zero disables attribution.
    pub users: u32,
}

impl WorkloadConfig {
    /// A busy HPC batch system: ~90 s between jobs, 20-minute median
    /// runtime with a heavy tail, jobs up to 32 nodes.
    pub fn batch_hpc() -> Self {
        WorkloadConfig {
            mean_interarrival: SimDuration::from_secs(90),
            diurnal_modulation: 0.5,
            runtime_median: SimDuration::from_minutes(20),
            runtime_sigma: 1.3,
            max_nodes: 32,
            mean_utilization: 0.85,
            deferrable_fraction: 0.3,
            deferral_slack: SimDuration::from_hours(12.0),
            users: 24,
        }
    }

    /// A cloud/hypervisor-style load: many single-node long-running
    /// tasks, lower utilisation.
    pub fn cloud_services() -> Self {
        WorkloadConfig {
            mean_interarrival: SimDuration::from_secs(240),
            diurnal_modulation: 0.3,
            runtime_median: SimDuration::from_hours(3.0),
            runtime_sigma: 1.0,
            max_nodes: 1,
            mean_utilization: 0.4,
            deferrable_fraction: 0.05,
            deferral_slack: SimDuration::from_hours(4.0),
            users: 60,
        }
    }
}

impl WorkloadConfig {
    /// Checks every sampler parameter up front, so generation refuses a
    /// bad config before drawing a single sample.
    pub fn validate(&self) -> WorkloadResult<()> {
        if !(0.0..1.0).contains(&self.diurnal_modulation) {
            return Err(WorkloadError::InvalidModulation {
                modulation: self.diurnal_modulation,
            });
        }
        if self.mean_interarrival.as_secs() <= 0 {
            return Err(WorkloadError::NonPositiveMean {
                mean: self.mean_interarrival.as_secs() as f64,
            });
        }
        if self.runtime_median.as_secs() <= 0 {
            return Err(WorkloadError::NonPositiveMedian {
                median: self.runtime_median.as_secs() as f64,
            });
        }
        if self.runtime_sigma < 0.0 {
            return Err(WorkloadError::NegativeSpread {
                spread: self.runtime_sigma,
            });
        }
        if self.max_nodes < 1 {
            return Err(WorkloadError::ZeroMaxWidth);
        }
        Ok(())
    }
}

/// Generates jobs over `period` by thinning a diurnally modulated Poisson
/// process. Deterministic per seed.
///
/// Panics on an invalid config; use [`try_generate`] to get the refusal
/// as a [`WorkloadError`] instead.
pub fn generate(cfg: &WorkloadConfig, period: Period, seed: u64) -> Vec<Job> {
    try_generate(cfg, period, seed).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`generate`]: refuses an invalid config as a typed
/// [`WorkloadError`] instead of panicking. Identical output on the Ok
/// path.
pub fn try_generate(cfg: &WorkloadConfig, period: Period, seed: u64) -> WorkloadResult<Vec<Job>> {
    cfg.validate()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut jobs = Vec::new();
    // Thinning: draw candidate gaps at the *peak* rate, accept each
    // candidate with probability rate(t)/peak_rate.
    let peak_gap = cfg.mean_interarrival.as_secs() as f64 / (1.0 + cfg.diurnal_modulation);
    let mut t = period.start();
    let mut id = 0u64;
    loop {
        let gap = exponential(&mut rng, peak_gap)?;
        t += SimDuration::from_secs(gap.ceil().max(1.0) as i64);
        if t >= period.end() {
            break;
        }
        // Diurnal acceptance: busiest mid-working-day (peak ~14:00).
        let phase = (t.hour_of_day() - 8.0) / 24.0 * std::f64::consts::TAU;
        let rate_factor =
            (1.0 + cfg.diurnal_modulation * phase.sin()) / (1.0 + cfg.diurnal_modulation);
        if rng.gen::<f64>() > rate_factor {
            continue;
        }
        let runtime_secs = lognormal_median(
            &mut rng,
            cfg.runtime_median.as_secs() as f64,
            cfg.runtime_sigma,
        )?
        .clamp(60.0, 48.0 * 3_600.0);
        let nodes = power_of_two_width(&mut rng, cfg.max_nodes)?;
        let utilization = (cfg.mean_utilization + 0.1 * (rng.gen::<f64>() - 0.5)).clamp(0.05, 1.0);
        let mut job = Job::new(id, t, SimDuration::from_secs(runtime_secs as i64), nodes)
            .with_utilization(utilization);
        if rng.gen::<f64>() < cfg.deferrable_fraction {
            job = job.deferrable_until(t + cfg.deferral_slack);
        }
        if cfg.users > 0 {
            job = job.with_user(format!("user{:02}", zipf_user(&mut rng, cfg.users)));
        }
        jobs.push(job);
        id += 1;
    }
    Ok(jobs)
}

/// Zipf-ish user draw: rank r chosen with weight 1/(r+1); heavy users
/// dominate, matching real batch-system accounting.
fn zipf_user(rng: &mut impl Rng, users: u32) -> u32 {
    let total: f64 = (1..=users).map(|r| 1.0 / f64::from(r)).sum();
    let mut x = rng.gen::<f64>() * total;
    for r in 1..=users {
        x -= 1.0 / f64::from(r);
        if x <= 0.0 {
            return r - 1;
        }
    }
    users - 1
}

/// Total offered load of a job set relative to a cluster's capacity over
/// `period`: `Σ node-seconds / (nodes × period)`. Values near or above 1
/// mean the cluster saturates.
pub fn offered_load(jobs: &[Job], cluster_nodes: u32, period: Period) -> f64 {
    let work: i64 = jobs.iter().map(Job::node_seconds).sum();
    let capacity = i64::from(cluster_nodes) * period.duration().as_secs();
    work as f64 / capacity as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use iriscast_units::Timestamp;

    fn day() -> Period {
        Period::snapshot_24h()
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig::batch_hpc();
        let a = generate(&cfg, day(), 7);
        let b = generate(&cfg, day(), 7);
        assert_eq!(a, b);
        let c = generate(&cfg, day(), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn volume_matches_rate() {
        let cfg = WorkloadConfig::batch_hpc();
        let jobs = generate(&cfg, day(), 42);
        // ~86,400/90 ≈ 960 expected arrivals; thinning keeps the average.
        assert!(
            (700..=1_200).contains(&jobs.len()),
            "generated {} jobs",
            jobs.len()
        );
    }

    #[test]
    fn submits_are_ordered_and_inside_period() {
        let jobs = generate(&WorkloadConfig::batch_hpc(), day(), 1);
        for w in jobs.windows(2) {
            assert!(w[0].submit <= w[1].submit);
            assert!(w[0].id < w[1].id);
        }
        for j in &jobs {
            assert!(day().contains(j.submit));
            assert!(j.nodes >= 1 && j.nodes <= 32);
            assert!((0.05..=1.0).contains(&j.cpu_utilization));
        }
    }

    #[test]
    fn diurnal_modulation_shapes_arrivals() {
        let cfg = WorkloadConfig {
            diurnal_modulation: 0.8,
            ..WorkloadConfig::batch_hpc()
        };
        // Average over many days to beat Poisson noise.
        let period = Period::starting_at(Timestamp::EPOCH, SimDuration::from_days(20));
        let jobs = generate(&cfg, period, 3);
        let day_jobs = jobs
            .iter()
            .filter(|j| (10.0..18.0).contains(&j.submit.hour_of_day()))
            .count();
        let night_jobs = jobs
            .iter()
            .filter(|j| {
                let h = j.submit.hour_of_day();
                !(6.0..22.0).contains(&h)
            })
            .count();
        // Equal-width windows (8 h each); day should dominate clearly.
        assert!(
            day_jobs as f64 > night_jobs as f64 * 1.5,
            "day {day_jobs} vs night {night_jobs}"
        );
    }

    #[test]
    fn deferrable_fraction_respected() {
        let cfg = WorkloadConfig {
            deferrable_fraction: 0.5,
            ..WorkloadConfig::batch_hpc()
        };
        let jobs = generate(&cfg, day(), 11);
        let frac = jobs.iter().filter(|j| j.deferrable).count() as f64 / jobs.len() as f64;
        assert!((frac - 0.5).abs() < 0.08, "deferrable fraction {frac}");
        for j in jobs.iter().filter(|j| j.deferrable) {
            assert_eq!(j.latest_start, Some(j.submit + cfg.deferral_slack));
        }
    }

    #[test]
    fn offered_load_sane() {
        let cfg = WorkloadConfig::batch_hpc();
        let jobs = generate(&cfg, day(), 5);
        let load_64 = offered_load(&jobs, 64, day());
        let load_1000 = offered_load(&jobs, 1_000, day());
        assert!(load_64 > load_1000);
        assert!(load_1000 > 0.0);
    }

    #[test]
    fn try_generate_matches_generate_on_valid_config() {
        let cfg = WorkloadConfig::batch_hpc();
        assert_eq!(
            try_generate(&cfg, day(), 7).unwrap(),
            generate(&cfg, day(), 7)
        );
    }

    #[test]
    fn try_generate_refuses_bad_modulation() {
        let cfg = WorkloadConfig {
            diurnal_modulation: 1.0,
            ..WorkloadConfig::batch_hpc()
        };
        assert_eq!(
            try_generate(&cfg, day(), 1),
            Err(WorkloadError::InvalidModulation { modulation: 1.0 })
        );
    }

    #[test]
    fn try_generate_refuses_zero_interarrival() {
        let cfg = WorkloadConfig {
            mean_interarrival: SimDuration::ZERO,
            ..WorkloadConfig::batch_hpc()
        };
        assert_eq!(
            try_generate(&cfg, day(), 1),
            Err(WorkloadError::NonPositiveMean { mean: 0.0 })
        );
    }

    #[test]
    fn try_generate_refuses_zero_runtime_median() {
        let cfg = WorkloadConfig {
            runtime_median: SimDuration::ZERO,
            ..WorkloadConfig::batch_hpc()
        };
        assert_eq!(
            try_generate(&cfg, day(), 1),
            Err(WorkloadError::NonPositiveMedian { median: 0.0 })
        );
    }

    #[test]
    fn try_generate_refuses_negative_sigma() {
        let cfg = WorkloadConfig {
            runtime_sigma: -0.1,
            ..WorkloadConfig::batch_hpc()
        };
        assert_eq!(
            try_generate(&cfg, day(), 1),
            Err(WorkloadError::NegativeSpread { spread: -0.1 })
        );
    }

    #[test]
    fn try_generate_refuses_zero_width() {
        let cfg = WorkloadConfig {
            max_nodes: 0,
            ..WorkloadConfig::batch_hpc()
        };
        assert_eq!(
            try_generate(&cfg, day(), 1),
            Err(WorkloadError::ZeroMaxWidth)
        );
    }

    #[test]
    #[should_panic(expected = "diurnal modulation")]
    fn generate_still_panics_on_bad_config() {
        let cfg = WorkloadConfig {
            diurnal_modulation: -0.2,
            ..WorkloadConfig::batch_hpc()
        };
        let _ = generate(&cfg, day(), 1);
    }

    #[test]
    fn cloud_profile_differs() {
        let jobs = generate(&WorkloadConfig::cloud_services(), day(), 2);
        assert!(jobs.iter().all(|j| j.nodes == 1));
        let mean_util: f64 =
            jobs.iter().map(|j| j.cpu_utilization).sum::<f64>() / jobs.len() as f64;
        assert!((0.3..=0.5).contains(&mean_util));
    }
}
