//! Batch job description.

use iriscast_units::{SimDuration, Timestamp};
use serde::{Deserialize, Serialize};

/// One batch job as the scheduler sees it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Unique id (assigned by the generator, monotone in submit order).
    pub id: u64,
    /// Submission instant.
    pub submit: Timestamp,
    /// Actual runtime once started (the simulator treats the user estimate
    /// as exact; EASY backfill in practice uses estimates, and the
    /// distinction does not change the carbon accounting).
    pub runtime: SimDuration,
    /// Number of whole nodes requested.
    pub nodes: u32,
    /// CPU utilisation the job drives on its nodes while running, `[0,1]`.
    pub cpu_utilization: f64,
    /// Whether the job may be delayed for carbon reasons.
    pub deferrable: bool,
    /// Latest acceptable *start* time for deferrable jobs.
    pub latest_start: Option<Timestamp>,
    /// Submitting user/project, for usage attribution ("what the DRI was
    /// actually being used for" — the paper's future work).
    pub user: Option<String>,
}

impl Job {
    /// A non-deferrable job with the given shape.
    pub fn new(id: u64, submit: Timestamp, runtime: SimDuration, nodes: u32) -> Self {
        assert!(nodes > 0, "a job must request at least one node");
        assert!(
            runtime.as_secs() > 0,
            "a job must run for a positive duration"
        );
        Job {
            id,
            submit,
            runtime,
            nodes,
            cpu_utilization: 0.9,
            deferrable: false,
            latest_start: None,
            user: None,
        }
    }

    /// Attributes the job to a user/project.
    pub fn with_user(mut self, user: impl Into<String>) -> Self {
        self.user = Some(user.into());
        self
    }

    /// Marks the job as deferrable until `latest_start`.
    pub fn deferrable_until(mut self, latest_start: Timestamp) -> Self {
        self.deferrable = true;
        self.latest_start = Some(latest_start);
        self
    }

    /// Sets the driven CPU utilisation.
    pub fn with_utilization(mut self, u: f64) -> Self {
        assert!((0.0..=1.0).contains(&u), "utilisation must lie in [0, 1]");
        self.cpu_utilization = u;
        self
    }

    /// Node-seconds of work (`nodes × runtime`) — the scheduler-load
    /// metric.
    pub fn node_seconds(&self) -> i64 {
        i64::from(self.nodes) * self.runtime.as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let j = Job::new(1, Timestamp::EPOCH, SimDuration::HOUR, 4);
        assert_eq!(j.node_seconds(), 4 * 3_600);
        assert!(!j.deferrable);
        assert_eq!(j.cpu_utilization, 0.9);
    }

    #[test]
    fn deferrable_builder() {
        let deadline = Timestamp::from_hours(20.0);
        let j = Job::new(1, Timestamp::EPOCH, SimDuration::HOUR, 1).deferrable_until(deadline);
        assert!(j.deferrable);
        assert_eq!(j.latest_start, Some(deadline));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = Job::new(1, Timestamp::EPOCH, SimDuration::HOUR, 0);
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn zero_runtime_rejected() {
        let _ = Job::new(1, Timestamp::EPOCH, SimDuration::ZERO, 1);
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn utilization_validated() {
        let _ = Job::new(1, Timestamp::EPOCH, SimDuration::HOUR, 1).with_utilization(1.5);
    }
}
