//! Cluster workload and scheduler simulation.
//!
//! The paper measures a DRI running *whatever its users happened to run*
//! that day, and flags usage-awareness as future work ("does not consider
//! what the DRI was actually being used for, how efficiently jobs were
//! running"). This crate supplies the usage substrate:
//!
//! * [`Job`] and [`generate`] — synthetic batch workloads with diurnal
//!   Poisson arrivals and lognormal runtimes (the standard parametric
//!   shape of HPC traces);
//! * [`ClusterSim`] — an event-driven cluster simulator that plays a job
//!   stream through a scheduling policy and records per-node busy
//!   intervals;
//! * [`scheduler`] — FCFS, EASY backfill, and a carbon-aware policy that
//!   delays deferrable jobs into low-intensity windows using the grid
//!   crate's (forecast) series;
//! * [`metrics`] — wait/utilisation statistics and per-job energy/carbon
//!   attribution.
//!
//! The simulator's output converts directly into the telemetry crate's
//! [`iriscast_telemetry::TraceUtilization`], closing the loop: jobs →
//! utilisation → power → measured energy → carbon.
//!
//! # Example
//!
//! ```
//! use iriscast_workload::{generate, ClusterSim, scheduler::FcfsScheduler, WorkloadConfig};
//! use iriscast_units::Period;
//!
//! let jobs = generate(&WorkloadConfig::batch_hpc(), Period::snapshot_24h(), 42);
//! let sim = ClusterSim::new(64);
//! let outcome = sim.run(jobs, &mut FcfsScheduler, Period::snapshot_24h());
//! assert!(outcome.mean_utilization() > 0.0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod cluster;
pub mod distributions;
pub mod error;
mod generate;
mod job;
pub mod metrics;
pub mod scheduler;

pub use cluster::{ClusterSim, ScheduledJob, SimOutcome};
pub use error::{WorkloadError, WorkloadResult};
pub use generate::{generate, offered_load, try_generate, WorkloadConfig};
pub use job::Job;
pub use scheduler::{Scheduler, SchedulerContext};
