//! Wait-time statistics and per-job energy/carbon attribution.

use crate::cluster::{ScheduledJob, SimOutcome};
use iriscast_grid::IntensitySeries;
use iriscast_telemetry::NodePowerModel;
use iriscast_units::{CarbonMass, Energy, Period, SimDuration};
use serde::{Deserialize, Serialize};

/// Queueing-delay summary of a simulation outcome.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WaitStats {
    /// Mean wait.
    pub mean: SimDuration,
    /// Median wait.
    pub p50: SimDuration,
    /// 95th-percentile wait.
    pub p95: SimDuration,
    /// Worst wait.
    pub max: SimDuration,
}

/// Computes wait statistics; `None` when nothing was scheduled.
pub fn wait_stats(outcome: &SimOutcome) -> Option<WaitStats> {
    if outcome.scheduled.is_empty() {
        return None;
    }
    let mut waits: Vec<i64> = outcome
        .scheduled
        .iter()
        .map(|s| s.wait().as_secs())
        .collect();
    waits.sort_unstable();
    let n = waits.len();
    let pick = |q: f64| {
        let idx = ((n - 1) as f64 * q).round() as usize;
        SimDuration::from_secs(waits[idx])
    };
    Some(WaitStats {
        mean: SimDuration::from_secs(waits.iter().sum::<i64>() / n as i64),
        p50: pick(0.5),
        p95: pick(0.95),
        max: SimDuration::from_secs(waits[n - 1]),
    })
}

/// Energy attributable to one scheduled job under `model`.
///
/// `marginal` charges only the power the job adds above idle (the idle
/// floor is infrastructure overhead); gross (`marginal = false`) charges
/// the job its nodes' full wall power while it holds them — the
/// accounting choice changes per-job numbers by 2–4×, which is exactly the
/// kind of methodology sensitivity the paper's future work flags.
pub fn job_energy(job: &ScheduledJob, model: &NodePowerModel, marginal: bool) -> Energy {
    let p_run = model.wall_power(job.job.cpu_utilization);
    let per_node = if marginal {
        p_run - model.wall_power(0.0)
    } else {
        p_run
    };
    per_node * f64::from(job.job.nodes) * (job.end - job.start)
}

/// Carbon attributable to one scheduled job: its energy in each
/// settlement slot times that slot's intensity. Slots outside the series
/// use the series mean (conservative fallback).
pub fn job_carbon(
    job: &ScheduledJob,
    model: &NodePowerModel,
    intensity: &IntensitySeries,
    marginal: bool,
) -> CarbonMass {
    let p_run = model.wall_power(job.job.cpu_utilization);
    let per_node = if marginal {
        p_run - model.wall_power(0.0)
    } else {
        p_run
    };
    let power = per_node * f64::from(job.job.nodes);
    let span = Period::new(job.start, job.end);
    let mut total = CarbonMass::ZERO;
    let mut covered = SimDuration::ZERO;
    for (slot, ci) in intensity.iter() {
        if let Some(overlap) = slot.intersect(&span) {
            total += power * overlap.duration() * ci;
            covered += overlap.duration();
        }
    }
    let uncovered = span.duration() - covered;
    if uncovered.as_secs() > 0 {
        total += power * uncovered * intensity.mean();
    }
    total
}

/// Carbon attributed per user: each user's jobs charged marginally, plus
/// an equal-per-node-second share of the idle floor spread over the work
/// actually done — so the per-user totals sum to [`outcome_carbon`].
///
/// Jobs without a user are pooled under `"(unattributed)"`. Returns
/// `(user, carbon)` pairs sorted by descending carbon.
pub fn carbon_by_user(
    outcome: &SimOutcome,
    model: &NodePowerModel,
    intensity: &IntensitySeries,
) -> Vec<(String, CarbonMass)> {
    use std::collections::HashMap;
    let mut marginal: HashMap<&str, CarbonMass> = HashMap::new();
    let mut node_seconds: HashMap<&str, f64> = HashMap::new();
    let mut total_node_seconds = 0.0;
    for job in &outcome.scheduled {
        let user = job.job.user.as_deref().unwrap_or("(unattributed)");
        let c = job_carbon(job, model, intensity, true);
        *marginal.entry(user).or_insert(CarbonMass::ZERO) += c;
        let ns = (job.end - job.start).as_secs() as f64 * f64::from(job.job.nodes);
        *node_seconds.entry(user).or_insert(0.0) += ns;
        total_node_seconds += ns;
    }
    // Idle floor, split by usage share (a common accounting convention:
    // overheads follow consumption).
    let idle_power = model.wall_power(0.0) * f64::from(outcome.total_nodes);
    let mut idle_total = CarbonMass::ZERO;
    for (slot, ci) in intensity.iter() {
        if let Some(overlap) = slot.intersect(&outcome.period) {
            idle_total += idle_power * overlap.duration() * ci;
        }
    }
    let mut out: Vec<(String, CarbonMass)> = marginal
        .into_iter()
        .map(|(user, c)| {
            let share = if total_node_seconds > 0.0 {
                node_seconds[user] / total_node_seconds
            } else {
                0.0
            };
            (user.to_string(), c + idle_total * share)
        })
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1));
    out
}

/// Total carbon of an outcome: every job's gross carbon plus the idle
/// floor of the whole cluster across the window.
pub fn outcome_carbon(
    outcome: &SimOutcome,
    model: &NodePowerModel,
    intensity: &IntensitySeries,
) -> CarbonMass {
    // Idle floor: all nodes at idle for the whole window, charged at the
    // slot intensities.
    let idle_power = model.wall_power(0.0) * f64::from(outcome.total_nodes);
    let mut total = CarbonMass::ZERO;
    for (slot, ci) in intensity.iter() {
        if let Some(overlap) = slot.intersect(&outcome.period) {
            total += idle_power * overlap.duration() * ci;
        }
    }
    // Plus each job's marginal (above-idle) carbon.
    for job in &outcome.scheduled {
        total += job_carbon(job, model, intensity, true);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::FcfsScheduler;
    use crate::{ClusterSim, Job};
    use iriscast_units::{CarbonIntensity, Power, Timestamp};

    fn model() -> NodePowerModel {
        NodePowerModel::linear(Power::from_watts(100.0), Power::from_watts(500.0))
    }

    fn flat_series(g: f64) -> IntensitySeries {
        IntensitySeries::constant(
            Period::snapshot_24h(),
            SimDuration::SETTLEMENT_PERIOD,
            CarbonIntensity::from_grams_per_kwh(g),
        )
    }

    fn run_one(job: Job) -> SimOutcome {
        ClusterSim::new(4).run(vec![job], &mut FcfsScheduler, Period::snapshot_24h())
    }

    #[test]
    fn job_energy_marginal_vs_gross() {
        let outcome = run_one(
            Job::new(0, Timestamp::EPOCH, SimDuration::from_hours(10.0), 2).with_utilization(1.0),
        );
        let s = &outcome.scheduled[0];
        // Gross: 500 W × 2 nodes × 10 h = 10 kWh.
        let gross = job_energy(s, &model(), false);
        assert!((gross.kilowatt_hours() - 10.0).abs() < 1e-9);
        // Marginal: 400 W × 2 × 10 h = 8 kWh.
        let marginal = job_energy(s, &model(), true);
        assert!((marginal.kilowatt_hours() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn job_carbon_uses_slot_intensities() {
        // Dirty first half-day, clean second half.
        let mut v = vec![200.0; 24];
        v.extend(vec![0.0; 24]);
        let series = IntensitySeries::new(
            Timestamp::EPOCH,
            SimDuration::SETTLEMENT_PERIOD,
            v.iter()
                .map(|&g| CarbonIntensity::from_grams_per_kwh(g))
                .collect(),
        );
        // Runs 06:00–18:00: half dirty, half clean.
        let outcome = run_one(
            Job::new(
                0,
                Timestamp::from_hours(6.0),
                SimDuration::from_hours(12.0),
                1,
            )
            .with_utilization(1.0),
        );
        let c = job_carbon(&outcome.scheduled[0], &model(), &series, false);
        // 500 W × 6 dirty hours × 200 g = 600 g; clean hours contribute 0.
        assert!((c.grams() - 600.0).abs() < 1e-6, "got {}", c.grams());
    }

    #[test]
    fn job_carbon_falls_back_to_mean_outside_series() {
        let series = flat_series(100.0);
        // Job runs past the series' 24-hour coverage.
        let outcome = ClusterSim::new(4).run(
            vec![Job::new(
                0,
                Timestamp::from_hours(20.0),
                SimDuration::from_hours(8.0),
                1,
            )
            .with_utilization(1.0)],
            &mut FcfsScheduler,
            Period::snapshot_24h(),
        );
        let c = job_carbon(&outcome.scheduled[0], &model(), &series, false);
        // All 8 hours at 500 W × 100 g/kWh = 400 g (4 covered + 4 fallback).
        assert!((c.grams() - 400.0).abs() < 1e-6);
    }

    #[test]
    fn outcome_carbon_includes_idle_floor() {
        let series = flat_series(100.0);
        // Empty schedule: idle floor only. 4 nodes × 100 W × 24 h = 9.6 kWh
        // → 960 g.
        let outcome =
            ClusterSim::new(4).run(Vec::new(), &mut FcfsScheduler, Period::snapshot_24h());
        let c = outcome_carbon(&outcome, &model(), &series);
        assert!((c.grams() - 960.0).abs() < 1e-6);
    }

    #[test]
    fn wait_stats_computed() {
        let sim = ClusterSim::new(1);
        let jobs = vec![
            Job::new(0, Timestamp::EPOCH, SimDuration::from_hours(2.0), 1),
            Job::new(1, Timestamp::EPOCH, SimDuration::from_hours(2.0), 1),
            Job::new(2, Timestamp::EPOCH, SimDuration::from_hours(2.0), 1),
        ];
        let outcome = sim.run(jobs, &mut FcfsScheduler, Period::snapshot_24h());
        let stats = wait_stats(&outcome).unwrap();
        // Waits: 0, 2 h, 4 h.
        assert_eq!(stats.max, SimDuration::from_hours(4.0));
        assert_eq!(stats.p50, SimDuration::from_hours(2.0));
        assert_eq!(stats.mean, SimDuration::from_hours(2.0));
        assert_eq!(stats.p95, SimDuration::from_hours(4.0));
    }

    #[test]
    fn per_user_attribution_sums_to_outcome_total() {
        let series = flat_series(150.0);
        let jobs = vec![
            Job::new(0, Timestamp::EPOCH, SimDuration::from_hours(4.0), 2)
                .with_user("alice")
                .with_utilization(0.9),
            Job::new(
                1,
                Timestamp::from_hours(1.0),
                SimDuration::from_hours(2.0),
                1,
            )
            .with_user("bob")
            .with_utilization(0.5),
            Job::new(
                2,
                Timestamp::from_hours(2.0),
                SimDuration::from_hours(1.0),
                1,
            ),
        ];
        let outcome = ClusterSim::new(4).run(jobs, &mut FcfsScheduler, Period::snapshot_24h());
        let per_user = carbon_by_user(&outcome, &model(), &series);
        assert_eq!(per_user.len(), 3);
        // Sorted descending; alice (8 node-hours at 0.9) dominates.
        assert_eq!(per_user[0].0, "alice");
        assert!(per_user.iter().any(|(u, _)| u == "(unattributed)"));
        let sum: CarbonMass = per_user.iter().map(|(_, c)| *c).sum();
        let total = outcome_carbon(&outcome, &model(), &series);
        // Per-user sums cover the idle floor only in proportion to usage;
        // the unused idle remainder stays with the operator. Here ~14 of
        // 16 busy node-hours are attributed.
        assert!(sum <= total);
        assert!(sum.grams() > total.grams() * 0.05);
        // Marginal parts alone must reconstruct exactly: check via an
        // all-attributed workload.
        let jobs2 = vec![
            Job::new(0, Timestamp::EPOCH, SimDuration::from_hours(24.0), 4)
                .with_user("solo")
                .with_utilization(1.0),
        ];
        let outcome2 = ClusterSim::new(4).run(jobs2, &mut FcfsScheduler, Period::snapshot_24h());
        let per_user2 = carbon_by_user(&outcome2, &model(), &series);
        let sum2: CarbonMass = per_user2.iter().map(|(_, c)| *c).sum();
        let total2 = outcome_carbon(&outcome2, &model(), &series);
        assert!((sum2.grams() - total2.grams()).abs() < 1e-6);
    }

    #[test]
    fn empty_outcome_attributes_nothing() {
        let series = flat_series(100.0);
        let outcome =
            ClusterSim::new(2).run(Vec::new(), &mut FcfsScheduler, Period::snapshot_24h());
        assert!(carbon_by_user(&outcome, &model(), &series).is_empty());
    }

    #[test]
    fn wait_stats_empty() {
        let outcome =
            ClusterSim::new(1).run(Vec::new(), &mut FcfsScheduler, Period::snapshot_24h());
        assert!(wait_stats(&outcome).is_none());
    }
}
