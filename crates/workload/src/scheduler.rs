//! Scheduling policies: FCFS, EASY backfill, carbon-aware.

use crate::Job;
use iriscast_grid::IntensitySeries;
use iriscast_units::{CarbonIntensity, Timestamp};

/// What a policy can see when deciding whether to start a job.
pub struct SchedulerContext<'a> {
    /// Nodes currently idle.
    pub free_nodes: u32,
    /// Cluster size.
    pub total_nodes: u32,
    /// Decision instant.
    pub now: Timestamp,
    /// `(end_time, nodes)` of running jobs, sorted by end time ascending.
    pub running: &'a [(Timestamp, u32)],
    /// Grid carbon-intensity series, when the operator subscribes to one.
    pub intensity: Option<&'a IntensitySeries>,
}

impl SchedulerContext<'_> {
    /// Carbon intensity at `now`, if a series is attached and covers it.
    pub fn intensity_now(&self) -> Option<CarbonIntensity> {
        self.intensity.and_then(|s| s.at(self.now))
    }
}

/// A scheduling policy: given the queue (submit order) and the context,
/// pick the index of the job to start *now*, or `None` to wait.
///
/// The simulator calls `pick` repeatedly until it returns `None`, so a
/// policy starts any number of jobs per decision point.
pub trait Scheduler {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Chooses the next job to start.
    fn pick(&mut self, queue: &[Job], ctx: &SchedulerContext<'_>) -> Option<usize>;
}

/// First-come-first-served: start the head job when it fits, otherwise
/// block (no job may overtake the head).
#[derive(Clone, Copy, Debug, Default)]
pub struct FcfsScheduler;

impl Scheduler for FcfsScheduler {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn pick(&mut self, queue: &[Job], ctx: &SchedulerContext<'_>) -> Option<usize> {
        let head = queue.first()?;
        (head.nodes <= ctx.free_nodes).then_some(0)
    }
}

/// EASY backfilling: the head job gets a reservation at the earliest
/// instant enough nodes will be free; any later job may start now if it
/// fits the idle nodes and does not delay that reservation.
#[derive(Clone, Copy, Debug, Default)]
pub struct EasyBackfillScheduler;

impl EasyBackfillScheduler {
    /// Computes `(shadow_time, spare_nodes)`: when the head job's
    /// reservation begins, and how many nodes beyond its requirement will
    /// be free then. `None` if the head can never fit (wider than the
    /// cluster).
    fn reservation(head: &Job, ctx: &SchedulerContext<'_>) -> Option<(Timestamp, u32)> {
        if head.nodes > ctx.total_nodes {
            return None;
        }
        let mut available = ctx.free_nodes;
        if available >= head.nodes {
            return Some((ctx.now, available - head.nodes));
        }
        for &(end, nodes) in ctx.running {
            available += nodes;
            if available >= head.nodes {
                return Some((end, available - head.nodes));
            }
        }
        None
    }
}

impl Scheduler for EasyBackfillScheduler {
    fn name(&self) -> &'static str {
        "easy-backfill"
    }

    fn pick(&mut self, queue: &[Job], ctx: &SchedulerContext<'_>) -> Option<usize> {
        let head = queue.first()?;
        if head.nodes <= ctx.free_nodes {
            return Some(0);
        }
        let (shadow, spare) = Self::reservation(head, ctx)?;
        for (i, job) in queue.iter().enumerate().skip(1) {
            if job.nodes > ctx.free_nodes {
                continue;
            }
            let finishes_before_shadow = ctx.now + job.runtime <= shadow;
            let fits_spare = job.nodes <= spare;
            if finishes_before_shadow || fits_spare {
                return Some(i);
            }
        }
        None
    }
}

/// Carbon-aware wrapper: deferrable jobs are invisible to the inner policy
/// while the grid is dirtier than `threshold`, until their `latest_start`
/// deadline forces them through.
///
/// This is the paper's future-work direction made concrete: shift elastic
/// work into the low-intensity windows of Figure 1.
#[derive(Clone, Copy, Debug)]
pub struct CarbonAwareScheduler<S> {
    inner: S,
    threshold: CarbonIntensity,
}

impl<S: Scheduler> CarbonAwareScheduler<S> {
    /// Wraps `inner`, deferring elastic jobs while intensity exceeds
    /// `threshold`.
    pub fn new(inner: S, threshold: CarbonIntensity) -> Self {
        CarbonAwareScheduler { inner, threshold }
    }

    fn eligible(&self, job: &Job, ctx: &SchedulerContext<'_>) -> bool {
        if !job.deferrable {
            return true;
        }
        // Deadline pressure overrides greenness.
        if let Some(deadline) = job.latest_start {
            if ctx.now >= deadline {
                return true;
            }
        }
        match ctx.intensity_now() {
            Some(ci) => ci <= self.threshold,
            // No signal: behave like the inner policy.
            None => true,
        }
    }
}

impl<S: Scheduler> Scheduler for CarbonAwareScheduler<S> {
    fn name(&self) -> &'static str {
        "carbon-aware"
    }

    fn pick(&mut self, queue: &[Job], ctx: &SchedulerContext<'_>) -> Option<usize> {
        // Build the eligible view and remember original indices.
        let mut view = Vec::with_capacity(queue.len());
        let mut map = Vec::with_capacity(queue.len());
        for (i, job) in queue.iter().enumerate() {
            if self.eligible(job, ctx) {
                view.push(job.clone());
                map.push(i);
            }
        }
        let picked = self.inner.pick(&view, ctx)?;
        Some(map[picked])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iriscast_units::{Period, SimDuration};

    fn job(id: u64, nodes: u32, runtime_h: f64) -> Job {
        Job::new(
            id,
            Timestamp::EPOCH,
            SimDuration::from_hours(runtime_h),
            nodes,
        )
    }

    fn ctx<'a>(
        free: u32,
        total: u32,
        running: &'a [(Timestamp, u32)],
        intensity: Option<&'a IntensitySeries>,
    ) -> SchedulerContext<'a> {
        SchedulerContext {
            free_nodes: free,
            total_nodes: total,
            now: Timestamp::EPOCH,
            running,
            intensity,
        }
    }

    #[test]
    fn fcfs_blocks_on_head() {
        let mut s = FcfsScheduler;
        let queue = vec![job(0, 8, 1.0), job(1, 1, 1.0)];
        // Head needs 8, only 4 free: nothing starts, even though job 1 fits.
        assert_eq!(s.pick(&queue, &ctx(4, 16, &[], None)), None);
        assert_eq!(s.pick(&queue, &ctx(8, 16, &[], None)), Some(0));
        assert_eq!(s.pick(&[], &ctx(8, 16, &[], None)), None);
    }

    #[test]
    fn backfill_starts_short_job_behind_blocked_head() {
        let mut s = EasyBackfillScheduler;
        // 4 nodes free; head wants 8. A running job frees 8 nodes at t+2h.
        let running = [(Timestamp::from_hours(2.0), 8u32)];
        let queue = vec![job(0, 8, 4.0), job(1, 2, 1.0), job(2, 2, 6.0)];
        // Job 1 (2 nodes, 1 h < 2 h shadow) backfills.
        assert_eq!(s.pick(&queue, &ctx(4, 12, &running, None)), Some(1));
    }

    #[test]
    fn backfill_does_not_delay_reservation() {
        let mut s = EasyBackfillScheduler;
        // Head wants 8; 4 free; 8 freed at t+2h → shadow t+2h, spare 4.
        let running = [(Timestamp::from_hours(2.0), 8u32)];
        // Job 1: 6 nodes → exceeds free, skip. Job 2: 4 nodes, 6 h: longer
        // than shadow, but spare at shadow is 4, so it fits the spare.
        let queue = vec![job(0, 8, 4.0), job(1, 6, 0.5), job(2, 4, 6.0)];
        assert_eq!(s.pick(&queue, &ctx(4, 12, &running, None)), Some(2));
        // Job 2 now 5 nodes: exceeds free(4) → nothing backfills.
        let queue = vec![job(0, 8, 4.0), job(1, 6, 0.5), job(2, 5, 6.0)];
        assert_eq!(s.pick(&queue, &ctx(4, 12, &running, None)), None);
    }

    #[test]
    fn backfill_head_still_first_when_it_fits() {
        let mut s = EasyBackfillScheduler;
        let queue = vec![job(0, 2, 1.0), job(1, 1, 0.1)];
        assert_eq!(s.pick(&queue, &ctx(4, 8, &[], None)), Some(0));
    }

    #[test]
    fn backfill_impossible_head() {
        let mut s = EasyBackfillScheduler;
        // Head wider than the machine: no reservation exists; nothing
        // starts (the simulator will surface it as unstarted).
        let queue = vec![job(0, 64, 1.0), job(1, 1, 0.1)];
        assert_eq!(s.pick(&queue, &ctx(8, 8, &[], None)), None);
    }

    #[test]
    fn carbon_aware_defers_elastic_jobs_when_dirty() {
        let series = IntensitySeries::constant(
            Period::snapshot_24h(),
            SimDuration::SETTLEMENT_PERIOD,
            CarbonIntensity::from_grams_per_kwh(300.0),
        );
        let mut s =
            CarbonAwareScheduler::new(FcfsScheduler, CarbonIntensity::from_grams_per_kwh(150.0));
        let elastic = job(0, 2, 1.0).deferrable_until(Timestamp::from_hours(12.0));
        let firm = job(1, 2, 1.0);
        let queue = vec![elastic.clone(), firm.clone()];
        // Grid dirty: elastic job is skipped, firm job (index 1) starts.
        assert_eq!(s.pick(&queue, &ctx(8, 8, &[], Some(&series))), Some(1));
    }

    #[test]
    fn carbon_aware_starts_elastic_jobs_when_clean() {
        let series = IntensitySeries::constant(
            Period::snapshot_24h(),
            SimDuration::SETTLEMENT_PERIOD,
            CarbonIntensity::from_grams_per_kwh(60.0),
        );
        let mut s =
            CarbonAwareScheduler::new(FcfsScheduler, CarbonIntensity::from_grams_per_kwh(150.0));
        let queue = vec![job(0, 2, 1.0).deferrable_until(Timestamp::from_hours(12.0))];
        assert_eq!(s.pick(&queue, &ctx(8, 8, &[], Some(&series))), Some(0));
    }

    #[test]
    fn carbon_aware_deadline_forces_start() {
        let series = IntensitySeries::constant(
            Period::snapshot_24h(),
            SimDuration::SETTLEMENT_PERIOD,
            CarbonIntensity::from_grams_per_kwh(300.0),
        );
        let mut s =
            CarbonAwareScheduler::new(FcfsScheduler, CarbonIntensity::from_grams_per_kwh(150.0));
        // Deadline is now: must run despite the dirty grid.
        let queue = vec![job(0, 2, 1.0).deferrable_until(Timestamp::EPOCH)];
        assert_eq!(s.pick(&queue, &ctx(8, 8, &[], Some(&series))), Some(0));
    }

    #[test]
    fn carbon_aware_without_signal_is_transparent() {
        let mut s =
            CarbonAwareScheduler::new(FcfsScheduler, CarbonIntensity::from_grams_per_kwh(150.0));
        let queue = vec![job(0, 2, 1.0).deferrable_until(Timestamp::from_hours(12.0))];
        assert_eq!(s.pick(&queue, &ctx(8, 8, &[], None)), Some(0));
    }

    #[test]
    fn names() {
        assert_eq!(FcfsScheduler.name(), "fcfs");
        assert_eq!(EasyBackfillScheduler.name(), "easy-backfill");
        assert_eq!(
            CarbonAwareScheduler::new(FcfsScheduler, CarbonIntensity::ZERO).name(),
            "carbon-aware"
        );
    }
}
