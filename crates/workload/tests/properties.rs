//! Property-based tests for the workload simulator's invariants.

use iriscast_units::{Period, SimDuration, Timestamp};
use iriscast_workload::scheduler::{EasyBackfillScheduler, FcfsScheduler};
use iriscast_workload::{generate, ClusterSim, Job, WorkloadConfig};
use proptest::prelude::*;

/// Strategy: a plausible job stream (sorted submits guaranteed by
/// construction).
fn job_stream(max_width: u32) -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec(
        (
            0i64..86_400,     // submit seconds
            60i64..8 * 3_600, // runtime
            1u32..=max_width, // width
            0.05f64..1.0,     // utilisation
        ),
        1..60,
    )
    .prop_map(|mut raw| {
        raw.sort_by_key(|r| r.0);
        raw.iter()
            .enumerate()
            .map(|(i, &(submit, runtime, nodes, util))| {
                Job::new(
                    i as u64,
                    Timestamp::from_secs(submit),
                    SimDuration::from_secs(runtime),
                    nodes,
                )
                .with_utilization(util)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No node is ever double-booked, under either policy.
    #[test]
    fn no_oversubscription(jobs in job_stream(8)) {
        let sim = ClusterSim::new(8);
        for policy in [true, false] {
            let outcome = if policy {
                sim.run(jobs.clone(), &mut FcfsScheduler, Period::snapshot_24h())
            } else {
                sim.run(jobs.clone(), &mut EasyBackfillScheduler, Period::snapshot_24h())
            };
            let mut by_node: Vec<Vec<(i64, i64)>> = vec![Vec::new(); 8];
            for s in &outcome.scheduled {
                prop_assert_eq!(s.node_ids.len(), s.job.nodes as usize);
                for &n in &s.node_ids {
                    by_node[n as usize].push((s.start.as_secs(), s.end.as_secs()));
                }
            }
            for intervals in by_node.iter_mut() {
                intervals.sort();
                for w in intervals.windows(2) {
                    prop_assert!(w[0].1 <= w[1].0, "overlap {w:?}");
                }
            }
        }
    }

    /// Conservation: every job is either scheduled or reported unstarted,
    /// exactly once, and no job starts before submission.
    #[test]
    fn job_conservation_and_causality(jobs in job_stream(8)) {
        let total = jobs.len();
        let sim = ClusterSim::new(8);
        let outcome = sim.run(jobs, &mut EasyBackfillScheduler, Period::snapshot_24h());
        prop_assert_eq!(outcome.scheduled.len() + outcome.unstarted.len(), total);
        let mut seen = std::collections::HashSet::new();
        for s in &outcome.scheduled {
            prop_assert!(seen.insert(s.job.id), "job {} ran twice", s.job.id);
            prop_assert!(s.start >= s.job.submit, "started before submit");
            prop_assert_eq!(s.end - s.start, s.job.runtime);
        }
        for j in &outcome.unstarted {
            prop_assert!(seen.insert(j.id), "job {} both ran and queued", j.id);
        }
    }

    /// FCFS respects arrival order: start times of scheduled jobs are
    /// monotone in job id (ids are submit-ordered).
    #[test]
    fn fcfs_preserves_order(jobs in job_stream(4)) {
        let sim = ClusterSim::new(8);
        let outcome = sim.run(jobs, &mut FcfsScheduler, Period::snapshot_24h());
        for w in outcome.scheduled.windows(2) {
            prop_assert!(
                w[0].job.id < w[1].job.id,
                "FCFS ran {} before {}",
                w[1].job.id,
                w[0].job.id
            );
            prop_assert!(w[0].start <= w[1].start);
        }
    }

    /// Backfill never lets a job wait longer than under FCFS *for the head
    /// job*: the head of the queue is never delayed by backfilling.
    #[test]
    fn backfill_never_delays_first_blocked_job(jobs in job_stream(6)) {
        let sim = ClusterSim::new(8);
        let fcfs = sim.run(jobs.clone(), &mut FcfsScheduler, Period::snapshot_24h());
        let easy = sim.run(jobs, &mut EasyBackfillScheduler, Period::snapshot_24h());
        // Compare per-job start times for jobs scheduled under both.
        let start_of = |o: &iriscast_workload::SimOutcome, id: u64| {
            o.scheduled.iter().find(|s| s.job.id == id).map(|s| s.start)
        };
        // The earliest-submitted job can never start later under EASY.
        if let (Some(f), Some(e)) = (start_of(&fcfs, 0), start_of(&easy, 0)) {
            prop_assert!(e <= f, "EASY delayed job 0: {e} vs {f}");
        }
    }

    /// Occupancy and utilisation are in [0, 1] and utilisation never
    /// exceeds occupancy.
    #[test]
    fn utilisation_bounds(jobs in job_stream(8)) {
        let sim = ClusterSim::new(8);
        let outcome = sim.run(jobs, &mut EasyBackfillScheduler, Period::snapshot_24h());
        let occ = outcome.occupancy();
        let util = outcome.mean_utilization();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&occ));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&util));
        prop_assert!(util <= occ + 1e-9);
    }

    /// The generator respects its config across seeds.
    #[test]
    fn generator_respects_bounds(seed in 0u64..1_000) {
        let cfg = WorkloadConfig::batch_hpc();
        let jobs = generate(&cfg, Period::snapshot_24h(), seed);
        for j in &jobs {
            prop_assert!(j.nodes >= 1 && j.nodes <= cfg.max_nodes);
            prop_assert!(j.runtime.as_secs() >= 60);
            prop_assert!(Period::snapshot_24h().contains(j.submit));
        }
    }
}
