//! Carbon-aware scheduling: shift deferrable work into green windows.
//!
//! The paper's Figure 1 shows the GB grid swinging between ~50 and
//! ~300 gCO₂/kWh within days. This example runs the same workload through
//! the discrete-event co-simulation engine — job arrivals, the half-hourly
//! grid signal, the scheduler and a live telemetry collector wired as one
//! event graph — and measures the avoided carbon. The pre-engine batch
//! simulator (`ClusterSim`) runs the same policies as a comparison column.
//!
//! Run with: `cargo run --release --example carbon_aware_scheduling`

use iriscast::grid::scenario::uk_november_2022;
use iriscast::model::report::{paper_num, TextTable};
use iriscast::model::time_resolved::TimeResolvedAssessment;
use iriscast::prelude::*;
use iriscast::sim::DeferralScenario;
use iriscast::telemetry::NodeGroupTelemetry;
use iriscast::units::{SimDuration, Timestamp};
use iriscast::workload::generate;
use iriscast::workload::metrics::{carbon_by_user, outcome_carbon, wait_stats};
use iriscast::workload::scheduler::{CarbonAwareScheduler, EasyBackfillScheduler};
use iriscast::workload::SimOutcome;

fn main() {
    // A week of grid intensity.
    let grid = uk_november_2022(7).simulate();
    let week = Period::starting_at(Timestamp::EPOCH, SimDuration::from_days(7));
    let series = grid.intensity().slice(week).expect("month covers the week");
    println!(
        "Grid week: mean {:.0} g/kWh, range {:.0}–{:.0}\n",
        series.mean().grams_per_kwh(),
        series.min().grams_per_kwh(),
        series.max().grams_per_kwh()
    );

    // A cluster of 64 nodes and a workload where 60% of jobs tolerate a
    // 12-hour delayed start.
    let cfg = WorkloadConfig {
        deferrable_fraction: 0.6,
        mean_interarrival: SimDuration::from_secs(240),
        ..WorkloadConfig::batch_hpc()
    };
    let jobs = generate(&cfg, week, 11);
    let model = NodePowerModel::linear(Power::from_watts(120.0), Power::from_watts(550.0));

    // Threshold: start elastic jobs only below the week's median intensity.
    let threshold = series.percentile(0.5);
    println!("Policy threshold: defer elastic jobs while grid > {threshold} (week median)\n");

    // The co-simulation: WorkloadSource → ClusterComponent ← GridSignal,
    // with a live SiteCollector metering every node. One run with the
    // grid signal wired (carbon-aware FCFS), one without (plain FCFS).
    let mut telemetry = SiteTelemetryConfig::new(
        "SIM-64",
        vec![NodeGroupTelemetry {
            label: "compute".into(),
            count: 64,
            power_model: model,
        }],
        11,
    );
    // Half-hourly sampling: the measured energy lands directly on the
    // settlement grid the assessment convolves against.
    telemetry.sample_step = SimDuration::SETTLEMENT_PERIOD;
    let scenario = DeferralScenario {
        window: week,
        nodes: 64,
        jobs: jobs.clone(),
        intensity: series.clone(),
        threshold,
        telemetry,
    };
    let baseline = scenario.run_baseline().expect("baseline scenario runs");
    let aware = scenario.run().expect("carbon-aware scenario runs");
    println!(
        "Engine runs: {} events (baseline), {} events (carbon-aware)\n",
        baseline.events_processed, aware.events_processed
    );

    // The pre-engine batch simulator as the comparison column: same jobs,
    // same intensity, EASY backfill with and without the carbon wrapper.
    let sim = ClusterSim::new(64);
    let batch_easy = {
        let mut policy = EasyBackfillScheduler;
        sim.run_with_intensity(jobs.clone(), &mut policy, week, Some(&series))
    };
    let batch_aware = {
        let mut policy = CarbonAwareScheduler::new(EasyBackfillScheduler, threshold);
        sim.run_with_intensity(jobs.clone(), &mut policy, week, Some(&series))
    };

    let mut table = TextTable::new(vec![
        "Policy",
        "Jobs run",
        "Occupancy",
        "Mean wait (h)",
        "Carbon (kg)",
    ])
    .title("One week, 64 nodes, same submitted workload");

    let rows: Vec<(&str, &SimOutcome)> = vec![
        ("FCFS (engine)", &baseline.outcome),
        ("Carbon-aware (engine)", &aware.outcome),
        ("EASY backfill (batch)", &batch_easy),
        ("Carbon-aware EASY (batch)", &batch_aware),
    ];
    let mut carbons = Vec::new();
    for (name, outcome) in &rows {
        let carbon = outcome_carbon(outcome, &model, &series);
        let waits = wait_stats(outcome).expect("jobs ran");
        table = table.row(vec![
            name.to_string(),
            outcome.scheduled.len().to_string(),
            format!("{:.1}%", outcome.occupancy() * 100.0),
            format!("{:.2}", waits.mean.as_hours()),
            paper_num(carbon.kilograms()),
        ]);
        carbons.push(carbon);
    }
    println!("{}", table.render());

    let saved = carbons[0] - carbons[1];
    let pct = saved / carbons[0] * 100.0;
    println!("Carbon-aware scheduling avoided {saved} ({pct:.1}%) at the cost of longer queues.");

    // The intervention is visible in the schedule itself: deferrable jobs
    // started at different instants than the baseline run.
    let starts = |outcome: &SimOutcome| {
        let mut s: Vec<(u64, Timestamp)> = outcome
            .scheduled
            .iter()
            .map(|j| (j.job.id, j.start))
            .collect();
        s.sort_unstable();
        s
    };
    let base_starts = starts(&baseline.outcome);
    let aware_starts = starts(&aware.outcome);
    let moved = base_starts
        .iter()
        .filter(|(id, start)| {
            aware_starts
                .binary_search_by_key(id, |(i, _)| *i)
                .map(|k| aware_starts[k].1 != *start)
                .unwrap_or(false)
        })
        .count();
    println!(
        "\nDeferral moved {moved} of {} job starts relative to the baseline engine run.",
        base_starts.len()
    );
    assert!(
        moved > 0,
        "carbon-aware deferral must change at least one job start time"
    );

    // Usage attribution — who the carbon belongs to (the paper's "what
    // the DRI was actually being used for").
    let per_user = carbon_by_user(&aware.outcome, &model, &series);
    println!("\nTop users by attributed carbon (carbon-aware engine run):");
    for (user, carbon) in per_user.iter().take(5) {
        println!("  {user:<16} {carbon}");
    }

    // Total impact of the carbon-aware week, equation (1) style — but now
    // the energy series is *measured*: the live collector metered the
    // fleet the scheduler was driving, and its half-hourly energy
    // convolves against the same grid week the policy reacted to.
    let assessment = TimeResolvedAssessment::builder()
        .energy_series(aware.energy.clone())
        .ci_series(series.clone())
        .pue_values(&[1.1, 1.3, 1.6])
        .embodied_linspace(
            Bounds::new(
                CarbonMass::from_kilograms(400.0),
                CarbonMass::from_kilograms(1_100.0),
            ),
            4,
        )
        .lifespan_linspace(3.0, 7.0, 5)
        .servers(64)
        .build()
        .expect("valid week-assessment inputs");
    let space_results = assessment.evaluate_space();
    println!(
        "\nTotal-impact envelope for the measured carbon-aware week ({} scenarios): {}",
        space_results.len(),
        space_results.assessment()
    );

    // Sanity for CI runs of the example: every path ran the workload, and
    // deferral did not increase emissions on either engine.
    assert!(baseline.outcome.scheduled.len() > 100);
    assert!(batch_easy.scheduled.len() > 100);
    assert!(carbons[1] <= carbons[0]);
    assert!(carbons[3] <= carbons[2]);
    let env = space_results.envelope();
    assert!(env.total.lo < env.total.hi);
    assert!(env.embodied.lo > CarbonMass::ZERO);
}
