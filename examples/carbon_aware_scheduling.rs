//! Carbon-aware scheduling: shift deferrable work into green windows.
//!
//! The paper's Figure 1 shows the GB grid swinging between ~50 and
//! ~300 gCO₂/kWh within days. This example runs the same workload through
//! FCFS and a carbon-aware policy against a simulated November week and
//! measures the avoided carbon — the paper's future-work direction.
//!
//! Run with: `cargo run --release --example carbon_aware_scheduling`

use iriscast::grid::scenario::uk_november_2022;
use iriscast::model::report::{paper_num, TextTable};
use iriscast::prelude::*;
use iriscast::units::{SimDuration, Timestamp};
use iriscast::workload::generate;
use iriscast::workload::metrics::{carbon_by_user, job_energy, outcome_carbon, wait_stats};
use iriscast::workload::scheduler::{CarbonAwareScheduler, EasyBackfillScheduler};

fn main() {
    // A week of grid intensity.
    let grid = uk_november_2022(7).simulate();
    let week = Period::starting_at(Timestamp::EPOCH, SimDuration::from_days(7));
    let series = grid.intensity().slice(week).expect("month covers the week");
    println!(
        "Grid week: mean {:.0} g/kWh, range {:.0}–{:.0}\n",
        series.mean().grams_per_kwh(),
        series.min().grams_per_kwh(),
        series.max().grams_per_kwh()
    );

    // A cluster of 64 nodes and a workload where 60% of jobs tolerate a
    // 12-hour delayed start.
    let cfg = WorkloadConfig {
        deferrable_fraction: 0.6,
        mean_interarrival: SimDuration::from_secs(240),
        ..WorkloadConfig::batch_hpc()
    };
    let jobs = generate(&cfg, week, 11);
    let model = NodePowerModel::linear(Power::from_watts(120.0), Power::from_watts(550.0));
    let sim = ClusterSim::new(64);

    // Threshold: start elastic jobs only below the week's median intensity.
    let threshold = series.percentile(0.5);
    println!("Policy threshold: defer elastic jobs while grid > {threshold} (week median)\n");

    let mut table = TextTable::new(vec![
        "Policy",
        "Jobs run",
        "Occupancy",
        "Mean wait (h)",
        "Carbon (kg)",
    ])
    .title("One week, 64 nodes, same submitted workload");

    let mut results = Vec::new();
    {
        let mut fcfs = EasyBackfillScheduler;
        let outcome = sim.run_with_intensity(jobs.clone(), &mut fcfs, week, Some(&series));
        results.push(("EASY backfill", outcome));
    }
    {
        let mut aware = CarbonAwareScheduler::new(EasyBackfillScheduler, threshold);
        let outcome = sim.run_with_intensity(jobs.clone(), &mut aware, week, Some(&series));
        results.push(("Carbon-aware", outcome));
    }

    let mut carbons = Vec::new();
    for (name, outcome) in &results {
        let carbon = outcome_carbon(outcome, &model, &series);
        let waits = wait_stats(outcome).expect("jobs ran");
        table = table.row(vec![
            name.to_string(),
            outcome.scheduled.len().to_string(),
            format!("{:.1}%", outcome.occupancy() * 100.0),
            format!("{:.2}", waits.mean.as_hours()),
            paper_num(carbon.kilograms()),
        ]);
        carbons.push(carbon);
    }
    println!("{}", table.render());

    let saved = carbons[0] - carbons[1];
    let pct = saved / carbons[0] * 100.0;
    println!(
        "Carbon-aware scheduling avoided {} ({pct:.1}%) at the cost of longer queues.",
        saved
    );

    // Usage attribution — who the carbon belongs to (the paper's "what
    // the DRI was actually being used for").
    let per_user = carbon_by_user(&results[1].1, &model, &series);
    println!("\nTop users by attributed carbon (carbon-aware run):");
    for (user, carbon) in per_user.iter().take(5) {
        println!("  {user:<16} {carbon}");
    }

    // Total impact of the carbon-aware week, equation (1) style: the
    // measured IT energy through the scenario-space builder, CI axis
    // anchored to what the grid actually did that week, embodied charged
    // for a 7-day window over the paper's per-server bracket.
    let week_energy = results[1]
        .1
        .scheduled
        .iter()
        .fold(Energy::ZERO, |acc, j| acc + job_energy(j, &model, false));
    let assessment = Assessment::builder()
        .energy(week_energy)
        .ci_axis(
            ScenarioAxis::new(
                "carbon intensity (week p10/p50/p90)",
                vec![
                    series.percentile(0.10),
                    series.percentile(0.50),
                    series.percentile(0.90),
                ],
            )
            .expect("three percentile samples"),
        )
        .pue_values(&[1.1, 1.3, 1.6])
        .embodied_linspace(
            Bounds::new(
                CarbonMass::from_kilograms(400.0),
                CarbonMass::from_kilograms(1_100.0),
            ),
            4,
        )
        .lifespan_linspace(3.0, 7.0, 5)
        .servers(64)
        .window(SimDuration::from_days(7))
        .build()
        .expect("valid week-assessment axes");
    let space_results = assessment.evaluate_space();
    println!(
        "\nTotal-impact envelope for the carbon-aware week ({} scenarios): {}",
        space_results.len(),
        space_results.assessment()
    );

    // Sanity for CI runs of the example: both policies ran the workload
    // and deferral did not increase emissions.
    assert!(results[0].1.scheduled.len() > 100);
    assert!(carbons[1] <= carbons[0]);
    let env = space_results.envelope();
    assert!(env.total.lo < env.total.hi);
    assert!(env.embodied.lo > CarbonMass::ZERO);
}
