//! Whole-day time-resolved sweep: Table 2 telemetry × Figure 1 grid days.
//!
//! The paper measures a 24-hour estate energy (Table 2) and multiplies
//! its total by three reference intensities read off a month of
//! half-hourly grid data (Figure 1). This example keeps both series
//! *time-resolved* instead: the federation's simulated wall power is
//! integrated to half-hourly energy slots and convolved, interval by
//! interval, against every November day's intensity profile — so the
//! scenario space sweeps *which day the workload ran on* alongside the
//! usual PUE / embodied / lifespan axes, and the answer shows how much
//! the scalar shortcut hides.
//!
//! The finale refines the axes to a >10M-point space and evaluates it
//! with `stream_space`, which never materialises result columns — memory
//! stays O(axes) no matter how many points stream past.
//!
//! Run with: `cargo run --release --example day_sweep`

use iriscast::grid::scenario::uk_november_2022;
use iriscast::model::iris::IrisScenario;
use iriscast::model::paper;
use iriscast::model::report::{ascii_bar, paper_num, TextTable};
use iriscast::prelude::*;
use iriscast::telemetry::timeseries::GapPolicy;
use iriscast::units::SimDuration;

fn main() {
    let seed = 2022;

    // ---- Table 2 substrate: one measured day of estate energy ---------
    println!("Simulating 24 h of telemetry for the IRIS federation…");
    let scenario = IrisScenario::paper_snapshot(seed).with_sample_step(SimDuration::from_secs(60));
    let snapshot = scenario.simulate(4);
    let mut wall = snapshot.site_results[0].true_wall_series().clone();
    for site in &snapshot.site_results[1..] {
        wall.add_assign_lenient(site.true_wall_series());
    }
    // 1-minute wall power → half-hourly energy slots, the granularity the
    // grid publishes intensity at.
    let energy = wall.to_energy_series(SimDuration::SETTLEMENT_PERIOD, GapPolicy::HoldLast);
    assert_eq!(energy.len(), 48);
    println!(
        "Measured: {} kWh across {} half-hourly slots\n",
        paper_num(energy.total().kilowatt_hours()),
        energy.len()
    );

    // ---- Figure 1 substrate: thirty candidate grid days ----------------
    // Each November day becomes one sample of the carbon-intensity axis,
    // rebased onto the telemetry clock so the grids align exactly.
    let sim = uk_november_2022(seed).simulate();
    let month = sim.intensity();
    let days: Vec<IntensitySeries> = (0..30)
        .map(|d| {
            month
                .slice(Period::day(d))
                .expect("the November simulation covers 30 whole days")
                .rebased(energy.start())
        })
        .collect();

    // ---- The time-resolved sweep: day × PUE × embodied × lifespan ------
    let assessment = TimeResolvedAssessment::builder()
        .energy_series(energy)
        .ci_series_all(days)
        .pue_values(&[1.1, 1.3, 1.6])
        .embodied_bounds(paper::server_embodied_bounds())
        .lifespans_years(&[3, 5, 7])
        .servers(paper::AMORTISATION_FLEET_SERVERS)
        .build()
        .expect("November days align with the telemetry grid");
    let space = assessment.space();
    println!(
        "Scenario space: {} grid days × {} PUE × {} embodied × {} lifespan = {} points",
        space.axis_len(AxisId::Ci),
        space.axis_len(AxisId::Pue),
        space.axis_len(AxisId::Embodied),
        space.axis_len(AxisId::Lifespan),
        space.len()
    );
    let results = assessment.evaluate_space();
    assert_eq!(
        results,
        assessment.par_evaluate_space(0),
        "parallel must equal serial exactly"
    );

    // ---- Which day the workload runs on is a first-class axis ----------
    // Marginalising over the day axis: the envelope of mean totals across
    // the other axes, one row per grid day.
    let day_marginals = results.marginals(AxisId::Ci);
    let best = day_marginals
        .iter()
        .min_by(|a, b| a.mean_total.total_cmp(&b.mean_total))
        .unwrap();
    let worst = day_marginals
        .iter()
        .max_by(|a, b| a.mean_total.total_cmp(&b.mean_total))
        .unwrap();
    println!("\nSame workload, same hardware — only the grid day changes (mean total, kg CO2e):");
    for m in &day_marginals {
        let kg = m.mean_total.kilograms();
        println!(
            "  day {:>2}  {:>6} kg  |{}|",
            m.sample_index,
            paper_num(kg),
            ascii_bar(kg, 0.0, worst.mean_total.kilograms() * 1.05, 40)
        );
    }
    println!(
        "Cleanest day {} vs dirtiest day {}: {} vs {} kg — a ×{:.1} spread the\n\
         scalar low/medium/high evaluation cannot attribute to a date.",
        best.sample_index,
        worst.sample_index,
        paper_num(best.mean_total.kilograms()),
        paper_num(worst.mean_total.kilograms()),
        worst.mean_total.kilograms() / best.mean_total.kilograms()
    );

    // ---- Per-interval structure of the dirtiest day --------------------
    // The paper's central scenario (PUE 1.3, 5-year lifespan), pinned to
    // the dirtiest grid day, resolved half-hour by half-hour.
    let idx = space
        .index_of([worst.sample_index, 1, 1, 1])
        .expect("central coordinates are in range");
    let profile = assessment.profile(idx).unwrap();
    let (clean_slot, clean_kg) = profile.cleanest_slot();
    let (dirty_slot, dirty_kg) = profile.dirtiest_slot();
    let mut t = TextTable::new(vec!["Half-hour (slot start)", "Active kg CO2e"])
        .title("Within-day extremes, dirtiest November day (PUE 1.3, 5 y)");
    t = t.row(vec![
        format!(
            "cleanest: {:>5.1} h",
            clean_slot.start().as_secs() as f64 / 3_600.0
        ),
        format!("{:.1}", clean_kg.kilograms()),
    ]);
    t = t.row(vec![
        format!(
            "dirtiest: {:>5.1} h",
            dirty_slot.start().as_secs() as f64 / 3_600.0
        ),
        format!("{:.1}", dirty_kg.kilograms()),
    ]);
    println!("\n{}", t.render());
    let per_slot: Vec<f64> = profile.active().iter().map(|a| a.kilograms()).collect();
    let sum: f64 = per_slot.iter().sum();
    let integrated = profile.integrated();
    assert!((sum - integrated.active.kilograms()).abs() < 1e-6 * integrated.active.kilograms());

    // ---- >10M points, bounded memory -----------------------------------
    // Refine the scalar axes until the space passes 10M points, then
    // stream it: the sink folds envelope + mean on the fly and no result
    // column is ever allocated (materialising this space would need three
    // 10M-row columns; streaming keeps memory at the axis tables).
    let huge = TimeResolvedAssessment::builder()
        .energy_series(assessment.energy().clone())
        .ci_series_all((0..30).map(|d| {
            month
                .slice(Period::day(d))
                .expect("covered day")
                .rebased(assessment.energy().start())
        }))
        .pue_values(
            &(0..70)
                .map(|i| 1.1 + 0.5 * f64::from(i) / 70.0)
                .collect::<Vec<_>>(),
        )
        .embodied_linspace(paper::server_embodied_bounds(), 70)
        .lifespan_linspace(3.0, 7.0, 70)
        .servers(paper::AMORTISATION_FLEET_SERVERS)
        .build()
        .expect("refined axes stay valid");
    let n = huge.space().len();
    assert!(n > 10_000_000, "space holds {n} points");
    let mut count = 0usize;
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut sum_kg = 0.0f64;
    huge.stream_space(|p| {
        let kg = p.outcome.total().kilograms();
        lo = lo.min(kg);
        hi = hi.max(kg);
        sum_kg += kg;
        count += 1;
    });
    assert_eq!(count, n);
    println!(
        "Streamed {} time-resolved scenarios without materialising a column:\n\
         total carbon {}–{} kg, mean {} kg.",
        paper_num(count as f64),
        paper_num(lo),
        paper_num(hi),
        paper_num(sum_kg / count as f64)
    );
}
