//! Fault injection on the event engine: meter dropout with typed
//! recovery, and grid-driven curtailment fanned across a fleet.
//!
//! Real monitoring stacks lose instruments mid-sweep (Section 3's
//! PDU/IPMI/turbostat methods all have documented outage modes), and
//! real operators shed load when the grid is stressed. This example
//! runs both as event graphs from the scenario library:
//!
//! 1. A `DropoutScenario` — a `FaultInjector` replays an outage script
//!    into a live collector; gap outages are repaired after the sweep
//!    under an explicit `GapPolicy`, and an unrecoverable gap is a
//!    *typed* refusal, not a silent zero.
//! 2. A `CurtailmentScenario` — one grid signal, one curtailment
//!    authority, three sites; orders fan out over the engine's port
//!    fanout while two of the sites also ride through meter outages.
//!
//! Run with: `cargo run --release --example fault_injection`

use iriscast::grid::scenario::uk_november_2022;
use iriscast::grid::stress_episodes;
use iriscast::prelude::*;
use iriscast::sim::{settle_emissions, MeterOutage, SiteSpec};
use iriscast::telemetry::{DropoutMode, NodeGroupTelemetry, NodePowerModel};
use iriscast::units::{SimDuration, Timestamp};
use iriscast::workload::generate;

fn hours(t: Timestamp) -> f64 {
    t.as_secs() as f64 / 3_600.0
}

fn site_telemetry(code: &str, nodes: u32, seed: u64) -> SiteTelemetryConfig {
    let mut cfg = SiteTelemetryConfig::new(
        code,
        vec![NodeGroupTelemetry {
            label: "compute".into(),
            count: nodes,
            power_model: NodePowerModel::linear(Power::from_watts(140.0), Power::from_watts(620.0)),
        }],
        seed,
    );
    cfg.sample_step = SimDuration::SETTLEMENT_PERIOD;
    cfg
}

fn main() {
    let day = Period::snapshot_24h();

    // ── 1. Meter dropout and recovery ────────────────────────────────
    println!("Meter dropout: 16 nodes, 24 h, two instruments go dark\n");
    let outages = vec![
        MeterOutage {
            method: MeterKind::Pdu,
            mode: DropoutMode::Gap,
            window: Period::new(Timestamp::from_hours(6.0), Timestamp::from_hours(9.0)),
        },
        MeterOutage {
            method: MeterKind::Ipmi,
            mode: DropoutMode::HoldLast,
            window: Period::new(Timestamp::from_hours(14.0), Timestamp::from_hours(18.0)),
        },
    ];
    let dropout = DropoutScenario {
        window: day,
        telemetry: site_telemetry("FAULT-16", 16, 11),
        utilization: 0.55,
        utilization_seed: 11,
        outages,
        recovery: GapPolicy::Interpolate,
    };
    let run = dropout.run().expect("gaps are recoverable");
    let truth = run.telemetry.true_energy();
    println!(
        "  ground truth      {:>9.1} kWh   ({} events)",
        truth.kilowatt_hours(),
        run.events_processed
    );
    for (kind, energy) in &run.recovered {
        if let Some(e) = energy {
            println!(
                "  {:<9} reads {:>9.1} kWh   ({:+.2}% vs truth, gaps interpolated)",
                kind.to_string(),
                e.kilowatt_hours(),
                100.0 * (e.kilowatt_hours() - truth.kilowatt_hours()) / truth.kilowatt_hours()
            );
        }
    }

    // A method dark for the whole window has nothing to recover from —
    // the library refuses with a typed error instead of inventing data.
    let unrecoverable = DropoutScenario {
        outages: vec![MeterOutage {
            method: MeterKind::Turbostat,
            mode: DropoutMode::Gap,
            window: day,
        }],
        ..dropout
    };
    let err = unrecoverable.run().expect_err("whole-window gap");
    println!("\n  whole-window gap: {err}\n");

    // ── 2. Grid-driven curtailment across a fleet ────────────────────
    let grid = uk_november_2022(1).simulate();
    let series = grid.intensity().slice(day).expect("month covers the day");
    let threshold = series.percentile(0.75);
    let episodes = stress_episodes(&series, threshold);
    println!("Curtailment: 3 × 32-node sites, curtail to 25% while grid > {threshold}");
    for e in &episodes {
        println!(
            "  stress episode {:>5.1}–{:>4.1} h  peak {:>5.0}  mean {:>5.0} g/kWh",
            hours(e.window.start()),
            hours(e.window.end()),
            e.peak.grams_per_kwh(),
            e.mean.grams_per_kwh()
        );
    }

    let sites = (0..3u64)
        .map(|i| {
            let jobs = generate(
                &WorkloadConfig {
                    mean_interarrival: SimDuration::from_secs(480),
                    ..WorkloadConfig::batch_hpc()
                },
                day,
                42 + i,
            );
            // Two of the three sites also lose meters mid-run: the same
            // graph exercises curtailment and dropout together.
            let outages = if i < 2 {
                vec![MeterOutage {
                    method: MeterKind::Pdu,
                    mode: DropoutMode::HoldLast,
                    window: Period::new(
                        Timestamp::from_hours(7.0 + i as f64),
                        Timestamp::from_hours(10.0 + i as f64),
                    ),
                }]
            } else {
                Vec::new()
            };
            SiteSpec {
                nodes: 32,
                jobs,
                telemetry: site_telemetry(&format!("SITE-{i}"), 32, 42 + i),
                outages,
            }
        })
        .collect::<Vec<_>>();
    let scenario = CurtailmentScenario {
        window: day,
        intensity: series.clone(),
        threshold,
        level: 0.25,
        sites,
    };

    let curtailed = scenario.run().expect("fleet runs");
    let free = scenario.run_unconstrained().expect("fleet runs");
    println!("\n  authority transitions:");
    for (t, on) in &curtailed.transitions {
        println!(
            "    {:>5.1} h  {}",
            hours(*t),
            if *on { "curtail to 25%" } else { "release" }
        );
    }

    println!(
        "\n  {:<8} {:>16} {:>16}",
        "site", "unconstrained", "curtailed"
    );
    let mut total_free = 0.0;
    let mut total_curtailed = 0.0;
    for (i, (c, f)) in curtailed.sites.iter().zip(&free.sites).enumerate() {
        let gf = settle_emissions(&f.energy, &series);
        let gc = settle_emissions(&c.energy, &series);
        total_free += gf;
        total_curtailed += gc;
        println!(
            "  SITE-{i}   {:>12.1} kg {:>12.1} kg",
            gf / 1_000.0,
            gc / 1_000.0
        );
    }
    println!(
        "  {:<8} {:>12.1} kg {:>12.1} kg   ({:.1}% shifted out of the stressed block)",
        "fleet",
        total_free / 1_000.0,
        total_curtailed / 1_000.0,
        100.0 * (total_free - total_curtailed) / total_free
    );
    println!(
        "\n  (events: curtailed {} / unconstrained {})",
        curtailed.events_processed, free.events_processed
    );
}
