//! Scale-out topology end to end: three regional assessment services,
//! each behind its own loopback TCP socket, federated into one fleet
//! roll-up over the wire — and shown bit-identical to a single flat
//! service that ingested every site directly.
//!
//! The moving parts:
//!
//! 1. **Regions** — each region runs its own `AssessmentService`
//!    hosting that region's sites, with sliding-window retention
//!    bounding the queryable scenario ensemble (the energy ledger the
//!    federation reads is deliberately unaffected).
//! 2. **Transport** — every region serves the NDJSON protocols over a
//!    `SocketServer`; ingest and queries arrive as newline-delimited
//!    frames, failures come back as `ok: false` replies, and malformed
//!    frames never sever a connection.
//! 3. **Federation** — a `FleetFederator` connects to each region,
//!    enumerates its sites (`"sites"` ask, sorted), pulls each site's
//!    `"export"` (cumulative seq-ordered energy + fleet size) and
//!    folds it into a `FleetRollup` — the same fold the in-process
//!    fleet path uses, so quantiles, totals and region roll-ups are
//!    bit-identical to a flat deployment.
//!
//! Run with: `cargo run --release --example federated_service`

use iriscast::model::federation::FleetRollup;
use iriscast::prelude::*;
use iriscast::serve::federator::site_rollup;

fn records(site: &str, energies: &[f64]) -> Vec<SnapshotRecord> {
    energies
        .iter()
        .enumerate()
        .map(|(seq, &kwh)| SnapshotRecord {
            site: site.into(),
            seq: seq as u64,
            window_start_s: seq as i64 * 21_600,
            window_end_s: (seq as i64 + 1) * 21_600,
            energy_kwh: kwh,
        })
        .collect()
}

fn main() {
    // --- The fleet: 3 regions × 2 sites, IRIS-like site codes. -------
    let regions = [
        ("EAST", vec![("CAM", 2_398u32), ("RAL", 1_560)]),
        ("NORTH", vec![("EDI", 900), ("DUR", 640)]),
        ("WEST", vec![("MAN", 1_100), ("LIV", 480)]),
    ];
    // Six windows of 6 h telemetry per site, energies scaled by size.
    let energies = |servers: u32| -> Vec<f64> {
        (0..6)
            .map(|w| f64::from(servers) * (1.6 + 0.21 * f64::from(w)))
            .collect()
    };

    // --- Regional services, each behind its own socket. --------------
    let mut services = Vec::new();
    let mut servers = Vec::new();
    let flat = AssessmentService::new(); // the reference deployment
    for (_code, sites) in &regions {
        let service = AssessmentService::new();
        for &(site, fleet) in sites {
            service
                .register_site(site, SiteModel::paper(fleet))
                .expect("register regional site");
            flat.register_site(site, SiteModel::paper(fleet))
                .expect("register flat site");
            // Keep only the last 2 windows queryable per site: the
            // scenario ensemble slides, the energy ledger does not.
            service.set_retention(site, 2).unwrap();
            for r in &records(site, &energies(fleet)) {
                service.ingest(r).expect("regional ingest");
                flat.ingest(r).expect("flat ingest");
            }
        }
        servers.push(service.serve_tcp("127.0.0.1:0").expect("bind region"));
        services.push(service);
    }
    println!("regional services online:");
    for ((code, sites), server) in regions.iter().zip(&servers) {
        println!(
            "  {code:<5} {addr:<21} sites {names}",
            addr = server.addr(),
            names = sites.iter().map(|(s, _)| *s).collect::<Vec<_>>().join(", ")
        );
    }

    // --- A wire client pokes one region directly. ---------------------
    let mut client = SocketClient::connect_tcp(servers[0].addr()).expect("connect EAST");
    let reply = client
        .query(&QueryRequest::bare("CAM", "watermark"))
        .expect("watermark round trip");
    println!(
        "\nCAM watermark over the wire: folded {} evicted {} (retention keeps 2)",
        reply.folded.unwrap(),
        reply.evicted.unwrap()
    );
    let mut req = QueryRequest::bare("CAM", "percentile");
    req.q = Some(0.95);
    let p95 = client.query(&req).expect("p95 round trip");
    println!(
        "CAM p95 total over the wire: {:.1} kg CO2e ({} scenario points)",
        p95.value_kg.unwrap(),
        p95.points.unwrap()
    );

    // --- Federate the three regions over their sockets. ---------------
    let federator = FleetFederator::new(
        regions
            .iter()
            .zip(&servers)
            .map(|((code, _), server)| RegionHandle::of(*code, server))
            .collect(),
    );
    let period = Period::snapshot_24h();
    let fleet = federator.federate(period).expect("federation sweep");

    println!("\nfederated fleet roll-up:");
    println!(
        "  {} sites, {} nodes, total best estimate {:.1} kWh",
        fleet.site_count(),
        fleet.total_nodes(),
        fleet.total_best_estimate().kilowatt_hours()
    );
    for region in fleet.region_rollups() {
        println!(
            "  {code:<5} {sites} sites {nodes:>5} nodes {kwh:>12.1} kWh",
            code = region.code,
            sites = region.sites,
            nodes = region.nodes,
            kwh = region.best_estimate.kilowatt_hours()
        );
    }
    println!(
        "  per-site median {:.1} kWh, hottest site {:.1} kWh",
        fleet.percentile(0.5).unwrap().kilowatt_hours(),
        fleet.hottest_site().unwrap().1.kilowatt_hours()
    );

    // --- Prove it equals the flat deployment, bit for bit. ------------
    let mut reference =
        FleetRollup::new(regions.iter().map(|(c, _)| (*c).into()).collect(), period);
    for (index, (_code, sites)) in regions.iter().enumerate() {
        let mut names: Vec<&str> = sites.iter().map(|(s, _)| *s).collect();
        names.sort_unstable();
        for site in names {
            let export = flat.export(site).expect("flat export");
            reference.fold_site(site_rollup(index as u32, export.servers, export.energy_kwh));
        }
    }
    let same = fleet
        .best_estimate_kwh()
        .iter()
        .zip(reference.best_estimate_kwh())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(same, "federated and flat columns must match bit for bit");
    assert_eq!(fleet.region_rollups(), reference.region_rollups());
    println!("\nfederated ≡ flat service: every per-site energy bit-identical");

    for server in servers {
        server.shutdown();
    }
}
