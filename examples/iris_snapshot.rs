//! The paper's experiment end-to-end: the IRIS 24-hour snapshot.
//!
//! Simulates the full federation (2,462 monitored nodes across six sites),
//! regenerates Tables 1–4 and the Figure 1 summary, and prints each next
//! to the published values.
//!
//! Run with: `cargo run --release --example iris_snapshot`

use iriscast::grid::scenario::uk_november_2022;
use iriscast::model::iris::IrisScenario;
use iriscast::model::report::{ascii_bar, paper_num, paper_opt, TextTable};
use iriscast::model::{paper, AssessmentParams, SnapshotAssessment};
use iriscast::prelude::*;
use iriscast::units::SimDuration;

fn main() {
    let seed = 2022;

    // ---- Table 1: the hardware inventory -------------------------------
    let fleet = iriscast::inventory::iris::iris_fleet();
    let mut t1 = TextTable::new(vec!["Site", "Hardware (inventoried)"])
        .title("Table 1: IRIS hardware included in the snapshot");
    for s in fleet.sites() {
        let compute = s.nodes_with_role(NodeRole::Compute);
        let storage = s.nodes_with_role(NodeRole::Storage);
        let mut desc = format!("{compute} CPU nodes");
        if storage > 0 {
            desc.push_str(&format!(" + {storage} storage nodes"));
        }
        t1 = t1.row(vec![s.code.clone(), desc]);
    }
    println!("{}", t1.render());

    // ---- Table 2: measured energy by method ----------------------------
    println!("Simulating 24 h of telemetry for 2,462 nodes…\n");
    let scenario = IrisScenario::paper_snapshot(seed).with_sample_step(SimDuration::from_secs(60));
    let result = scenario.simulate(4);

    let mut t2 = TextTable::new(vec![
        "Site",
        "Facility",
        "PDU",
        "IPMI",
        "Turbostat",
        "Nodes",
        "Paper best",
    ])
    .title("Table 2: active energy for the snapshot period (kWh) — simulated vs paper");
    for (row, published) in result.rows.iter().zip(paper::TABLE2_ROWS.iter()) {
        t2 = t2.row(vec![
            row.site.clone(),
            paper_opt(row.energies.facility.map(|e| e.kilowatt_hours())),
            paper_opt(row.energies.pdu.map(|e| e.kilowatt_hours())),
            paper_opt(row.energies.ipmi.map(|e| e.kilowatt_hours())),
            paper_opt(row.energies.turbostat.map(|e| e.kilowatt_hours())),
            row.nodes.to_string(),
            paper_opt(
                published
                    .facility_kwh
                    .or(published.pdu_kwh)
                    .or(published.ipmi_kwh),
            ),
        ]);
    }
    t2 = t2.row(vec![
        "Total".to_string(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        result.nodes().to_string(),
        format!(
            "{} (paper {})",
            paper_num(result.total().kilowatt_hours()),
            paper_num(paper::TABLE2_TOTAL_KWH)
        ),
    ]);
    println!("{}", t2.render());

    // ---- Figure 1: grid carbon intensity, November 2022 ----------------
    let sim = uk_november_2022(seed).simulate();
    let series = sim.intensity();
    let daily = series.daily_means();
    let refs = series.reference_values();
    println!("Figure 1: UK generation carbon intensity, simulated November 2022");
    println!(
        "  monthly mean {:.0} g/kWh; references (p5/median/p95): {} — paper uses 50/175/300\n",
        series.mean().grams_per_kwh(),
        refs
    );
    for (day, mean) in &daily {
        println!(
            "  day {day:>2}  {:>3.0} g/kWh  |{}|",
            mean.grams_per_kwh(),
            ascii_bar(mean.grams_per_kwh(), 0.0, 350.0, 40)
        );
    }
    println!();

    // ---- Tables 3 & 4 + summary -----------------------------------------
    let assessment = SnapshotAssessment::run(result.total(), &AssessmentParams::paper());

    let mut t3 = TextTable::new(vec![
        "CI scenario",
        "PUE 1.1",
        "PUE 1.3",
        "PUE 1.6",
        "Paper row",
    ])
    .title("Table 3: active carbon estimates (kgCO2), from the simulated energy");
    for (i, label) in ["Low (50)", "Medium (175)", "High (300)"]
        .iter()
        .enumerate()
    {
        t3 = t3.row(vec![
            label.to_string(),
            paper_num(assessment.active.cells[i][0].kilograms()),
            paper_num(assessment.active.cells[i][1].kilograms()),
            paper_num(assessment.active.cells[i][2].kilograms()),
            format!(
                "{} / {} / {}",
                paper_num(paper::TABLE3_WITH_FACILITIES_KG[i][0]),
                paper_num(paper::TABLE3_WITH_FACILITIES_KG[i][1]),
                paper_num(paper::TABLE3_WITH_FACILITIES_KG[i][2]),
            ),
        ]);
    }
    println!("{}", t3.render());

    let mut t4 = TextTable::new(vec![
        "Lifespan (y)",
        "kg/day/server @400",
        "@1100",
        "Fleet kg @400",
        "@1100",
        "Paper fleet",
    ])
    .title("Table 4: embodied carbon amortisation (2,398 servers)");
    for (row, (_, _, _, f400, f1100)) in assessment.embodied.rows.iter().zip(paper::TABLE4_ROWS) {
        t4 = t4.row(vec![
            row.lifespan_years.to_string(),
            format!("{:.2}", row.per_server_daily.lo.kilograms()),
            format!("{:.2}", row.per_server_daily.hi.kilograms()),
            paper_num(row.fleet_snapshot.lo.kilograms()),
            paper_num(row.fleet_snapshot.hi.kilograms()),
            format!("{} / {}", paper_num(f400), paper_num(f1100)),
        ]);
    }
    println!("{}", t4.render());

    println!("Summary: {}", assessment.assessment);
    println!(
        "Flight equivalence: {:.1}–{:.1} continuous 24 h passenger flights (paper: \"1 to 4\")",
        assessment.equivalents.lo.flight_days, assessment.equivalents.hi.flight_days
    );
}
