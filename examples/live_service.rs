//! The live assessment service end to end: a `SnapshotSampler` on the
//! event engine streams telemetry windows over a channel, a background
//! ingest thread folds each one into the warm per-site ensemble, and
//! queries — direct and over the NDJSON wire — answer between folds.
//!
//! The pipeline under the hood:
//!
//! 1. **Sample** — the engine cuts a 48 h run into 6 h snapshot
//!    windows (the degenerate-tail rule merges a short final window)
//!    and emits one `TelemetryDelta` per closed window.
//! 2. **Bridge** — each delta is reduced to its wire form
//!    (`SnapshotRecord`: site, window, seq, best-estimate energy) and
//!    forwarded, exactly what an NDJSON feed would carry.
//! 3. **Fold** — the service evaluates each record under the site's
//!    scenario template and folds it into the growing `SpaceResults`
//!    by galloping merge, keeping the cached sort warm; folds apply in
//!    sequence order whatever the arrival order.
//! 4. **Query** — envelope, quantiles and Bergmark–Coroamă tenant
//!    shares answer from the warm views, each reply carrying its fold
//!    watermark (the bounded-staleness observable).
//!
//! Run with: `cargo run --release --example live_service`

use crossbeam::channel::unbounded;
use iriscast::prelude::*;
use iriscast::serve::QueryRequest;
use iriscast::telemetry::{NodeGroupTelemetry, NodePowerModel, SyntheticUtilization};
use iriscast::units::{Period, Power, SimDuration, Timestamp};
use std::time::Duration;

fn main() {
    // --- The monitored site: 96 compute nodes, 30 min sampling. ------
    let mut cfg = SiteTelemetryConfig::new(
        "CAM",
        vec![NodeGroupTelemetry {
            label: "compute".into(),
            count: 96,
            power_model: NodePowerModel::linear(Power::from_watts(140.0), Power::from_watts(620.0)),
        }],
        2_022,
    );
    cfg.sample_step = SimDuration::from_secs(1_800);
    let period = Period::starting_at(Timestamp::EPOCH, SimDuration::from_hours(48.0));
    let interval = SimDuration::from_hours(6.0);

    // --- The service: scenario template, tenants, ingest thread. -----
    let service = AssessmentService::new();
    service
        .register_site("CAM", SiteModel::paper(96))
        .expect("first registration");
    service.register_tenant("CAM", "lsst", 3.0).unwrap();
    service.register_tenant("CAM", "euclid", 1.0).unwrap();

    let (delta_tx, delta_rx) = unbounded();
    let (record_tx, record_rx) = unbounded();
    let ingest = service.spawn_ingest(record_rx, Duration::from_millis(25));

    // Bridge thread: telemetry deltas → wire records, concurrently
    // with the simulation.
    let bridge = std::thread::spawn(move || {
        let mut forwarded = 0u64;
        while let Ok(delta) = delta_rx.recv() {
            let delta: TelemetryDelta = delta;
            let record = SnapshotRecord::from_telemetry(delta.seq, &delta.result)
                .expect("synthetic meters never go fully dark");
            record_tx.send(record).expect("ingest thread alive");
            forwarded += 1;
        }
        forwarded
    });

    // --- The simulation: sampler on the engine clock. ----------------
    let mut builder = EngineBuilder::new(period);
    let sampler_id = builder.add(Box::new(
        SnapshotSampler::new(
            cfg,
            period,
            interval,
            Box::new(SyntheticUtilization::calibrated(0.62, 7)),
            delta_tx,
        )
        .expect("interval tiles the sampling grid"),
    ));
    let mut engine = builder.build();
    engine.run_to_horizon();
    let sampler = engine.get_mut::<SnapshotSampler>(sampler_id).unwrap();
    println!(
        "sampler: {} windows emitted over {} h ({} dropped)",
        sampler.emitted(),
        period.duration().as_secs() / 3_600,
        sampler.dropped()
    );
    drop(engine); // drops the sampler's sender → bridge → ingest drain

    let forwarded = bridge.join().expect("bridge thread");
    let stats = ingest.join();
    println!(
        "ingest: {} folded, {} rejected, {} idle wakeups within the 25 ms staleness bound",
        stats.folded, stats.rejected, stats.idle_wakeups
    );
    assert_eq!(stats.folded, forwarded);

    // --- Queries from the warm views. --------------------------------
    let watermark = service.watermark("CAM").unwrap();
    println!(
        "\nwatermark: {} snapshots folded, {} pending, {} scenario points",
        watermark.folded, watermark.pending, watermark.points
    );

    let envelope = service.envelope("CAM").unwrap();
    let summary = service.summary("CAM").unwrap();
    println!(
        "48 h footprint envelope: {:.1} – {:.1} kg CO2e (median {:.1}, mean {:.1})",
        envelope.total.lo.kilograms(),
        envelope.total.hi.kilograms(),
        summary.median.kilograms(),
        summary.mean.kilograms()
    );

    println!("\ntenant attribution (weights 3:1, shares sum to 1):");
    for share in service.tenant_shares("CAM").unwrap() {
        println!(
            "  {:<7} share {:.2}  total {:.1} – {:.1} kg CO2e",
            share.tenant,
            share.share,
            share.total.lo.kilograms(),
            share.total.hi.kilograms()
        );
    }

    // --- The same answers over the NDJSON wire. ----------------------
    let requests = [
        QueryRequest {
            site: "CAM".into(),
            ask: "percentile".into(),
            q: Some(0.95),
            axis: None,
            tenant: None,
        },
        QueryRequest {
            site: "CAM".into(),
            ask: "tenant_share".into(),
            q: None,
            axis: None,
            tenant: Some("lsst".into()),
        },
    ];
    let input: Vec<String> = requests
        .iter()
        .map(|r| serde_json::to_string(r).expect("requests serialize"))
        .collect();
    let mut out = Vec::new();
    let served = service.serve_ndjson(&input.join("\n"), &mut out);
    println!("\nNDJSON wire ({served} replies):");
    print!("{}", String::from_utf8(out).expect("replies are UTF-8"));

    // The wire answer is the direct answer, bit for bit.
    let p95 = service.percentile("CAM", 0.95).unwrap();
    assert!(p95 <= envelope.total.hi && p95 >= envelope.total.lo);
    println!("\nlive service OK: p95 = {:.1} kg CO2e", p95.kilograms());
}
