//! Measurement-method study: why four meters disagree about one truth.
//!
//! Table 2 of the paper shows Turbostat reading ~5% below IPMI, IPMI
//! ~1.5% below the PDU, and sites where IPMI misses a quarter of the
//! energy outright. This example reproduces the whole spread on one
//! simulated site, then demonstrates the cross-calibration correction the
//! paper recommends ("adjusting in-node energy/power data to reflect the
//! overheads that are not being collected").
//!
//! Run with: `cargo run --example measurement_methods`

use iriscast::model::report::{paper_num, TextTable};
use iriscast::prelude::*;
use iriscast::telemetry::quality::{self, MethodAdjustment};
use iriscast::telemetry::{NodeGroupTelemetry, SiteEnergyReport, SyntheticUtilization};
use iriscast::units::SimDuration;

fn site(code: &str, nodes: u32, ipmi_coverage: f64, seed: u64) -> SiteTelemetryConfig {
    let mut cfg = SiteTelemetryConfig::new(
        code,
        vec![NodeGroupTelemetry {
            label: "compute".into(),
            count: nodes,
            power_model: NodePowerModel::linear(Power::from_watts(140.0), Power::from_watts(620.0)),
        }],
        seed,
    );
    cfg.ipmi_node_coverage = ipmi_coverage;
    cfg.sample_step = SimDuration::from_secs(60);
    cfg
}

fn main() {
    let day = Period::snapshot_24h();
    let util = SyntheticUtilization::calibrated(0.62, 3);

    // Site A: everything instrumented, full coverage (a QMUL).
    // Site B: only IPMI, and a third of the BMCs don't report (a Durham).
    let full = SiteCollector::new(site("FULL", 100, 1.0, 1))
        .collect(day, &util, 4)
        .expect("valid demo site");
    let partial = {
        let mut cfg = site("PARTIAL", 100, 0.67, 2);
        cfg.methods = vec![MeterKind::Ipmi];
        SiteCollector::new(cfg)
            .collect(day, &util, 4)
            .expect("valid demo site")
    };

    let mut table = TextTable::new(vec![
        "Method",
        "FULL site (kWh)",
        "vs PDU",
        "PARTIAL site (kWh)",
    ])
    .title("The same physical truth through four instruments");
    let pdu_full = full.energy(MeterKind::Pdu).unwrap().kilowatt_hours();
    for kind in MeterKind::ALL {
        let f = full.energy(kind).map(|e| e.kilowatt_hours());
        let p = partial.energy(kind).map(|e| e.kilowatt_hours());
        table = table.row(vec![
            kind.to_string(),
            f.map_or_else(|| "-".into(), paper_num),
            f.map_or("-".into(), |v| {
                format!("{:+.1}%", (v / pdu_full - 1.0) * 100.0)
            }),
            p.map_or_else(|| "-".into(), paper_num),
        ]);
    }
    println!("{}", table.render());
    println!(
        "True wall energy: FULL {} | PARTIAL {}\n",
        full.true_energy(),
        partial.true_energy()
    );

    // Cross-calibration: fit IPMI→PDU on the fully instrumented site,
    // apply it to the IPMI-only site.
    let rows: Vec<SiteEnergyReport> = vec![
        SiteEnergyReport::from_result(&full),
        SiteEnergyReport::from_result(&partial),
    ];
    let adj = MethodAdjustment::fit(&rows, MeterKind::Ipmi, MeterKind::Pdu)
        .expect("FULL site has both methods");
    println!(
        "Fitted IPMI→PDU factor on {:?}: ×{:.4}",
        adj.calibrated_on, adj.factor
    );

    let raw = partial.energy(MeterKind::Ipmi).unwrap();
    let corrected = adj.apply(raw);
    let truth = partial.true_energy();
    println!(
        "PARTIAL site: raw IPMI {} → corrected {} (truth {})",
        raw, corrected, truth
    );
    let raw_err = (raw.kilowatt_hours() / truth.kilowatt_hours() - 1.0) * 100.0;
    let cor_err = (corrected.kilowatt_hours() / truth.kilowatt_hours() - 1.0) * 100.0;
    println!("Error vs truth: raw {raw_err:+.1}% → corrected {cor_err:+.1}%");
    println!(
        "\nNote: the fitted factor corrects the *instrument* bias it saw at the FULL site \
         (−1.5%), not the PARTIAL site's missing BMCs (−33%) — matching the paper's warning \
         that per-site coverage must be understood before adjustment."
    );

    // Data-quality report across the two sites.
    let q = quality::assess(&rows);
    println!(
        "\nQuality: {:.0}% of site×method cells populated; worst spread {:?}",
        q.completeness * 100.0,
        q.worst_spread
    );
}
