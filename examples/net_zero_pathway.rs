//! Net-zero pathway: when does embodied carbon take over?
//!
//! Quantifies the paper's §6 outlook — "the embodied carbon will come to
//! dominate the climate impact of such systems" — by projecting the IRIS
//! estate along a GB grid-decarbonisation trajectory and locating the
//! crossover year, including its sensitivity to hardware lifespan. Also
//! itemises the network term of equation (2) that the paper could not
//! meter.
//!
//! Run with: `cargo run --example net_zero_pathway`

use iriscast::model::netzero::{crossover_year, project, DecarbonisationPathway, SteadyStateDri};
use iriscast::model::report::{ascii_bar, TextTable};
use iriscast::prelude::*;
use iriscast::telemetry::SiteNetwork;

fn main() {
    let pathway = DecarbonisationPathway::gb_default();
    let dri = SteadyStateDri::iris_central();
    let projection = project(&dri, &pathway, 24);

    println!(
        "IRIS steady state: {:.1} MWh/day IT × {}, {} servers on a {:.0}-year refresh at {} each\n",
        dri.daily_it_energy.megawatt_hours(),
        dri.pue,
        dri.servers,
        dri.lifespan_years,
        dri.embodied_per_server,
    );

    println!("Projection along the GB decarbonisation pathway:");
    println!("  year   grid     active    embodied  share  (# = embodied share of daily total)");
    for y in &projection {
        println!(
            "  {}  {:>3.0} g/kWh  {:>5.0} kg  {:>5.0} kg   {:>3.0}%  |{}|",
            y.year,
            y.intensity.grams_per_kwh(),
            y.active.kilograms(),
            y.embodied.kilograms(),
            y.embodied_share * 100.0,
            ascii_bar(y.embodied_share, 0.0, 1.0, 30),
        );
    }

    match crossover_year(&projection) {
        Some(year) => println!(
            "\n→ Embodied carbon overtakes active carbon in {year} under central assumptions."
        ),
        None => println!("\n→ No crossover within the projection window."),
    }

    // Sensitivity: the one lever operators control directly is lifespan.
    let mut t = TextTable::new(vec![
        "Refresh cycle",
        "Crossover year",
        "Embodied share in 2035",
    ])
    .title("\nSensitivity to hardware lifespan");
    for years in [3.0, 5.0, 7.0, 9.0] {
        let mut v = dri.clone();
        v.lifespan_years = years;
        let proj = project(&v, &pathway, 40);
        let cross = crossover_year(&proj)
            .map(|y| y.to_string())
            .unwrap_or_else(|| "-".into());
        let in_2035 = proj.iter().find(|y| y.year == 2035).expect("in range");
        t = t.row(vec![
            format!("{years:.0} years"),
            cross,
            format!("{:.0}%", in_2035.embodied_share * 100.0),
        ]);
    }
    println!("{}", t.render());

    // The network term of eq. (2), itemised for the whole federation.
    let fleet = iriscast::inventory::iris::iris_fleet();
    let day = Period::snapshot_24h();
    let mut total_network = Energy::ZERO;
    println!("Network estate (eq. 2's E_network, unmetered in the paper):");
    for site in fleet.sites() {
        let net = SiteNetwork::sized_for(site.monitored_nodes().max(1));
        let e = net.energy(day, 0.8);
        total_network += e;
        println!(
            "  {:<11} {:>3} devices  {:>6.1} kWh/day",
            site.code,
            net.device_count(),
            e.kilowatt_hours()
        );
    }
    println!(
        "  federation network total ≈ {:.0} kWh/day ({:.1}% of the 18,760 kWh node total)",
        total_network.kilowatt_hours(),
        total_network.kilowatt_hours() / 18_760.0 * 100.0
    );
}
