//! Procurement trade-off study: keep old hardware or buy efficient new?
//!
//! The paper's motivation is "good decision making around infrastructure
//! procurement". This example quantifies the canonical decision: a fleet
//! of 7-year-old servers could be replaced by half as many modern nodes at
//! twice the throughput each — but replacement *spends* embodied carbon
//! up front. We compare total carbon over a 4-year horizon under the
//! paper's CI scenarios and find the grid intensity at which the decision
//! flips.
//!
//! Run with: `cargo run --example procurement_planner`

use iriscast::model::embodied::AmortizationPolicy;
use iriscast::model::report::{paper_num, TextTable};
use iriscast::prelude::*;
use iriscast::units::{CarbonIntensity, CarbonMass, SimDuration};

struct Option_ {
    name: &'static str,
    /// Fleet wall power at the workload's duty point.
    fleet_power: Power,
    /// Embodied carbon charged to the horizon.
    embodied: CarbonMass,
}

fn main() {
    let horizon = SimDuration::from_years(4.0);

    // The incumbent: 200 nodes, 350 W mean each, embodied long written off
    // (bought 7 years ago, 5-year books) — only *remaining* amortisation
    // counts, which is zero. Keeping them costs energy only.
    let keep = Option_ {
        name: "Keep 200 aged nodes",
        fleet_power: Power::from_watts(350.0) * 200.0,
        embodied: CarbonMass::ZERO,
    };

    // The replacement: 100 new nodes do the same work at 280 W each.
    // Embodied: the paper's per-server range; charge the 4-year horizon of
    // a 6-year book linearly.
    let factors = EmbodiedFactors::typical();
    let new_node = NodeBuilder::new("gen-next")
        .cpu("zen4-96c", 96, 1_100.0, Power::from_watts(290.0))
        .dram_gb(384.0)
        .ssd_gb(1_920.0)
        .mainboard_cm2(2_000.0)
        .psus(2, Power::from_watts(1_100.0))
        .chassis_kg(18.0)
        .nic(100.0)
        .idle_power(Power::from_watts(110.0))
        .max_power(Power::from_watts(520.0))
        .build();
    let per_node_embodied = new_node.embodied(&factors);
    let charged = AmortizationPolicy::Linear.charge(
        per_node_embodied * 100.0,
        SimDuration::from_years(6.0),
        SimDuration::ZERO,
        horizon,
    );
    let replace = Option_ {
        name: "Replace with 100 new nodes",
        fleet_power: Power::from_watts(280.0) * 100.0,
        embodied: charged,
    };

    println!(
        "New node embodied (typical factors): {per_node_embodied}; fleet charge over 4 y: {charged}\n"
    );

    // Compare under the paper's three CI references.
    let mut table = TextTable::new(vec![
        "Scenario",
        "Keep: active (kg)",
        "Keep: total (kg)",
        "Replace: active (kg)",
        "Replace: total (kg)",
        "Winner",
    ])
    .title("Total carbon over a 4-year horizon");
    for (label, g) in [
        ("Low CI (50)", 50.0),
        ("Medium CI (175)", 175.0),
        ("High CI (300)", 300.0),
    ] {
        let ci = CarbonIntensity::from_grams_per_kwh(g);
        let row = |o: &Option_| {
            let active = o.fleet_power * horizon * ci;
            (active, active + o.embodied)
        };
        let (keep_active, keep_total) = row(&keep);
        let (rep_active, rep_total) = row(&replace);
        let winner = if rep_total < keep_total {
            replace.name
        } else {
            keep.name
        };
        table = table.row(vec![
            label.to_string(),
            paper_num(keep_active.kilograms()),
            paper_num(keep_total.kilograms()),
            paper_num(rep_active.kilograms()),
            paper_num(rep_total.kilograms()),
            winner.to_string(),
        ]);
    }
    println!("{}", table.render());

    // Where does the decision flip? Solve for the CI at which totals tie:
    // ci* = Δembodied / Δenergy.
    let delta_embodied = replace.embodied - keep.embodied;
    let delta_energy = (keep.fleet_power - replace.fleet_power) * horizon;
    let break_even =
        CarbonIntensity::from_grams_per_kwh(delta_embodied.grams() / delta_energy.kilowatt_hours());
    println!(
        "Break-even grid intensity: {break_even} — above this, replacement pays for its embodied carbon."
    );
    println!(
        "(The paper's summary predicts exactly this shift: as grids decarbonise, embodied \
         carbon increasingly dominates procurement decisions.)"
    );
}
