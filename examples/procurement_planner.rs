//! Procurement trade-off study: keep old hardware or buy efficient new?
//!
//! The paper's motivation is "good decision making around infrastructure
//! procurement". This example quantifies the canonical decision: a fleet
//! of 7-year-old servers could be replaced by half as many modern nodes at
//! twice the throughput each — but replacement *spends* embodied carbon
//! up front. Each option becomes a scenario-space assessment (the new
//! builder API): active carbon swept across the paper's CI references,
//! embodied charged to the horizon through the engine's amortisation
//! window. We compare totals and find the grid intensity at which the
//! decision flips.
//!
//! Run with: `cargo run --example procurement_planner`

use iriscast::model::report::{paper_num, TextTable};
use iriscast::prelude::*;
use iriscast::units::{CarbonIntensity, CarbonMass, SimDuration};

/// One procurement option, expressed as an engine assessment: wall energy
/// over the horizon × CI axis, plus the horizon's embodied charge.
struct Option_ {
    name: &'static str,
    assessment: Assessment,
}

/// The paper's CI references, as the swept axis both options share.
const CI_SCENARIOS: [f64; 3] = [50.0, 175.0, 300.0];

fn main() {
    let horizon = SimDuration::from_years(4.0);

    // The incumbent: 200 nodes, 350 W mean each, embodied long written off
    // (bought 7 years ago, 5-year books) — only *remaining* amortisation
    // counts, which is zero. Keeping them costs energy only.
    let keep = Option_ {
        name: "Keep 200 aged nodes",
        assessment: Assessment::builder()
            .energy(Power::from_watts(350.0) * 200.0 * horizon)
            .ci_grams_per_kwh(&CI_SCENARIOS)
            .pue_values(&[1.0])
            .embodied_axis(ScenarioAxis::singleton("embodied", CarbonMass::ZERO))
            .lifespan_axis(ScenarioAxis::singleton("lifespan", 1.0))
            .servers(0)
            .window(horizon)
            .build()
            .expect("valid keep-option axes"),
    };

    // The replacement: 100 new nodes do the same work at 280 W each.
    // Embodied: the component model's typical factors; the engine's
    // amortisation window charges the 4-year horizon of a 6-year book.
    let factors = EmbodiedFactors::typical();
    let new_node = NodeBuilder::new("gen-next")
        .cpu("zen4-96c", 96, 1_100.0, Power::from_watts(290.0))
        .dram_gb(384.0)
        .ssd_gb(1_920.0)
        .mainboard_cm2(2_000.0)
        .psus(2, Power::from_watts(1_100.0))
        .chassis_kg(18.0)
        .nic(100.0)
        .idle_power(Power::from_watts(110.0))
        .max_power(Power::from_watts(520.0))
        .build();
    let per_node_embodied = new_node.embodied(&factors);
    let replace = Option_ {
        name: "Replace with 100 new nodes",
        assessment: Assessment::builder()
            .energy(Power::from_watts(280.0) * 100.0 * horizon)
            .ci_grams_per_kwh(&CI_SCENARIOS)
            .pue_values(&[1.0])
            .embodied_axis(ScenarioAxis::singleton("embodied", per_node_embodied))
            .lifespan_axis(ScenarioAxis::singleton("lifespan", 6.0))
            .servers(100)
            .window(horizon)
            .build()
            .expect("valid replace-option axes"),
    };

    let keep_results = keep.assessment.evaluate_space();
    let replace_results = replace.assessment.evaluate_space();
    let charged = replace_results.embodied()[0];
    println!(
        "New node embodied (typical factors): {per_node_embodied}; fleet charge over 4 y: {charged}\n"
    );

    // Compare under the paper's three CI references: one row per point of
    // the shared CI axis.
    let mut table = TextTable::new(vec![
        "Scenario",
        "Keep: active (kg)",
        "Keep: total (kg)",
        "Replace: active (kg)",
        "Replace: total (kg)",
        "Winner",
    ])
    .title("Total carbon over a 4-year horizon");
    for (i, label) in ["Low CI (50)", "Medium CI (175)", "High CI (300)"]
        .iter()
        .enumerate()
    {
        let keep_total = keep_results.totals()[i];
        let rep_total = replace_results.totals()[i];
        let winner = if rep_total < keep_total {
            replace.name
        } else {
            keep.name
        };
        table = table.row(vec![
            label.to_string(),
            paper_num(keep_results.active()[i].kilograms()),
            paper_num(keep_total.kilograms()),
            paper_num(replace_results.active()[i].kilograms()),
            paper_num(rep_total.kilograms()),
            winner.to_string(),
        ]);
    }
    println!("{}", table.render());

    // Where does the decision flip? Solve for the CI at which totals tie:
    // ci* = Δembodied / Δenergy.
    let delta_embodied = charged - keep_results.embodied()[0];
    let delta_energy = keep.assessment.energy() - replace.assessment.energy();
    let break_even =
        CarbonIntensity::from_grams_per_kwh(delta_embodied.grams() / delta_energy.kilowatt_hours());
    println!(
        "Break-even grid intensity: {break_even} — above this, replacement pays for its embodied carbon."
    );
    println!(
        "(The paper's summary predicts exactly this shift: as grids decarbonise, embodied \
         carbon increasingly dominates procurement decisions.)"
    );

    // Sanity for CI runs: the decision flips across the swept axis.
    assert!(replace_results.totals()[2] < keep_results.totals()[2]);
    assert!(break_even.grams_per_kwh() > 0.0);
}
