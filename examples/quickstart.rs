//! Quickstart: assess a small research cluster in a few calls.
//!
//! Builds a 12-node toy DRI, simulates a day of telemetry, and produces a
//! total-carbon assessment with the paper's scenario ranges.
//!
//! Run with: `cargo run --example quickstart`

use iriscast::model::report::{paper_num, TextTable};
use iriscast::prelude::*;
use iriscast::telemetry::{NodeGroupTelemetry, SyntheticUtilization};

fn main() {
    // 1. Describe the hardware: one rack of dual-socket workers.
    let node = NodeBuilder::new("worker")
        .role(NodeRole::Compute)
        .cpu("epyc-7452", 32, 600.0, Power::from_watts(155.0))
        .cpu("epyc-7452", 32, 600.0, Power::from_watts(155.0))
        .dram_gb(256.0)
        .ssd_gb(960.0)
        .mainboard_cm2(2_000.0)
        .psus(2, Power::from_watts(1_100.0))
        .chassis_kg(18.0)
        .nic(25.0)
        .idle_power(Power::from_watts(120.0))
        .max_power(Power::from_watts(550.0))
        .build();

    // The component model prices its embodied carbon under three factor
    // presets (bracketing manufacturer LCA sheets).
    let low = node.embodied(&EmbodiedFactors::low());
    let typical = node.embodied(&EmbodiedFactors::typical());
    let high = node.embodied(&EmbodiedFactors::high());
    println!("Per-node embodied carbon: {low} / {typical} / {high}\n");

    // 2. Simulate a day of measured power for 12 such nodes.
    let config = SiteTelemetryConfig::new(
        "DEMO",
        vec![NodeGroupTelemetry {
            label: node.name().to_string(),
            count: 12,
            power_model: NodePowerModel::linear(node.idle_power(), node.max_power()),
        }],
        42,
    );
    let collector = SiteCollector::new(config);
    let util = SyntheticUtilization::calibrated(0.6, 7);
    let day = Period::snapshot_24h();
    let result = collector.collect(day, &util, 4);

    let table = TextTable::new(vec!["Method", "Energy (kWh)"])
        .title("Measured energy, 24 h, 12 nodes")
        .row(vec![
            "Facility".to_string(),
            paper_num(result.energy(MeterKind::Facility).unwrap().kilowatt_hours()),
        ])
        .row(vec![
            "PDU".to_string(),
            paper_num(result.energy(MeterKind::Pdu).unwrap().kilowatt_hours()),
        ])
        .row(vec![
            "IPMI".to_string(),
            paper_num(result.energy(MeterKind::Ipmi).unwrap().kilowatt_hours()),
        ])
        .row(vec![
            "Turbostat".to_string(),
            paper_num(
                result
                    .energy(MeterKind::Turbostat)
                    .unwrap()
                    .kilowatt_hours(),
            ),
        ]);
    println!("{}", table.render());

    // 3. Assess: active (CI × PUE ranges) + embodied (lifespan sweep).
    let energy = result.best_estimate().expect("facility meter present");
    let mut params = AssessmentParams::paper();
    params.servers = 12;
    params.embodied_per_server = iriscast::units::Bounds::new(low, high);
    let assessment = SnapshotAssessment::run(energy, &params);

    println!("Assessment: {}", assessment.assessment);
    let total = assessment.assessment.total();
    println!(
        "Embodied share: {:.0}%–{:.0}%",
        assessment.assessment.embodied_share().lo * 100.0,
        assessment.assessment.embodied_share().hi * 100.0
    );
    println!(
        "Equivalent to {:.2}–{:.2} continuous 24 h passenger flights",
        assessment.equivalents.lo.flight_days, assessment.equivalents.hi.flight_days
    );
    assert!(total.lo < total.hi);
}
