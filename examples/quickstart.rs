//! Quickstart: assess a small research cluster in a few calls.
//!
//! Builds a 12-node toy DRI, simulates a day of telemetry, and produces a
//! total-carbon assessment with the paper's scenario ranges.
//!
//! Run with: `cargo run --example quickstart`

use iriscast::model::report::{paper_num, TextTable};
use iriscast::prelude::*;
use iriscast::telemetry::{NodeGroupTelemetry, SyntheticUtilization};

fn main() {
    // 1. Describe the hardware: one rack of dual-socket workers.
    let node = NodeBuilder::new("worker")
        .role(NodeRole::Compute)
        .cpu("epyc-7452", 32, 600.0, Power::from_watts(155.0))
        .cpu("epyc-7452", 32, 600.0, Power::from_watts(155.0))
        .dram_gb(256.0)
        .ssd_gb(960.0)
        .mainboard_cm2(2_000.0)
        .psus(2, Power::from_watts(1_100.0))
        .chassis_kg(18.0)
        .nic(25.0)
        .idle_power(Power::from_watts(120.0))
        .max_power(Power::from_watts(550.0))
        .build();

    // The component model prices its embodied carbon under three factor
    // presets (bracketing manufacturer LCA sheets).
    let low = node.embodied(&EmbodiedFactors::low());
    let typical = node.embodied(&EmbodiedFactors::typical());
    let high = node.embodied(&EmbodiedFactors::high());
    println!("Per-node embodied carbon: {low} / {typical} / {high}\n");

    // 2. Simulate a day of measured power for 12 such nodes.
    let config = SiteTelemetryConfig::new(
        "DEMO",
        vec![NodeGroupTelemetry {
            label: node.name().to_string(),
            count: 12,
            power_model: NodePowerModel::linear(node.idle_power(), node.max_power()),
        }],
        42,
    );
    let collector = SiteCollector::new(config);
    let util = SyntheticUtilization::calibrated(0.6, 7);
    let day = Period::snapshot_24h();
    let result = collector.collect(day, &util, 4).expect("valid demo site");

    let table = TextTable::new(vec!["Method", "Energy (kWh)"])
        .title("Measured energy, 24 h, 12 nodes")
        .row(vec![
            "Facility".to_string(),
            paper_num(result.energy(MeterKind::Facility).unwrap().kilowatt_hours()),
        ])
        .row(vec![
            "PDU".to_string(),
            paper_num(result.energy(MeterKind::Pdu).unwrap().kilowatt_hours()),
        ])
        .row(vec![
            "IPMI".to_string(),
            paper_num(result.energy(MeterKind::Ipmi).unwrap().kilowatt_hours()),
        ])
        .row(vec![
            "Turbostat".to_string(),
            paper_num(
                result
                    .energy(MeterKind::Turbostat)
                    .unwrap()
                    .kilowatt_hours(),
            ),
        ]);
    println!("{}", table.render());

    // 3. Assess: build a scenario space — the paper's CI and PUE ranges
    //    as axes, this cluster's own embodied bracket, lifespans 3–7 y —
    //    and evaluate every scenario in one batch.
    let energy = result.best_estimate().expect("facility meter present");
    let assessment = Assessment::builder()
        .energy(energy)
        .ci_grams_per_kwh(&[50.0, 175.0, 300.0])
        .pue_values(&[1.1, 1.3, 1.6])
        .embodied_linspace(iriscast::units::Bounds::new(low, high), 5)
        .lifespan_linspace(3.0, 7.0, 5)
        .servers(12)
        .build()
        .expect("axes are non-empty and every PUE is valid");
    let results = assessment.evaluate_space();
    println!(
        "Evaluated {} scenarios ({:?} axis shape)",
        results.len(),
        assessment.space().shape()
    );

    let summary = results.assessment();
    println!("Assessment: {summary}");
    let total = summary.total();
    println!(
        "Embodied share: {:.0}%–{:.0}%",
        summary.embodied_share().lo * 100.0,
        summary.embodied_share().hi * 100.0
    );
    let flights = total.map(|t| iriscast::model::equivalence::equivalences(t).flight_days);
    println!(
        "Equivalent to {:.2}–{:.2} continuous 24 h passenger flights",
        flights.lo, flights.hi
    );
    assert!(total.lo < total.hi);
}
