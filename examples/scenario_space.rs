//! Scenario-space sweep: the paper's Tables 3 and 4, generalised to
//! 12,000 scenarios.
//!
//! The paper evaluates `total = active + embodied` at three hand-picked
//! values per input. This example refines the same published ranges —
//! CI 50–300 g/kWh, PUE 1.1–1.6, embodied 400–1,100 kg/server, lifespan
//! 3–7 years — into a 20 × 10 × 10 × 6 cartesian product, evaluates it in
//! one batch (serial and parallel, identical results), and asks questions
//! a 3 × 3 table cannot answer: where does the probability mass sit, and
//! which input leaves the most uncertainty unresolved?
//!
//! Run with: `cargo run --release --example scenario_space`

use iriscast::model::report::{paper_num, TextTable};
use iriscast::prelude::*;

fn main() {
    // 1. The paper's parameter ranges as dense axes.
    let assessment = Assessment::builder()
        .energy(Energy::from_kilowatt_hours(19_380.0))
        .ci_axis(
            ScenarioAxis::linspace(
                "carbon intensity",
                Bounds::new(
                    CarbonIntensity::from_grams_per_kwh(50.0),
                    CarbonIntensity::from_grams_per_kwh(300.0),
                ),
                20,
            )
            .expect("20 samples"),
        )
        .pue_values(&[1.1, 1.15, 1.2, 1.25, 1.3, 1.35, 1.4, 1.45, 1.5, 1.6])
        .embodied_linspace(
            Bounds::new(
                CarbonMass::from_kilograms(400.0),
                CarbonMass::from_kilograms(1_100.0),
            ),
            10,
        )
        .lifespan_linspace(3.0, 7.0, 6)
        .servers(2_398)
        .build()
        .expect("valid paper-shaped axes");

    let space = assessment.space();
    println!(
        "Scenario space: {} × {} × {} × {} = {} points\n",
        space.axis_len(AxisId::Ci),
        space.axis_len(AxisId::Pue),
        space.axis_len(AxisId::Embodied),
        space.axis_len(AxisId::Lifespan),
        space.len()
    );
    assert!(space.len() >= 10_000);

    // 2. Evaluate the whole space — and check the parallel path agrees
    //    bit-for-bit.
    let results = assessment.evaluate_space();
    let parallel = assessment.par_evaluate_space(0);
    assert_eq!(results, parallel, "parallel must equal serial exactly");

    // 3. Envelope and distribution. The corner-to-corner envelope is the
    //    paper's §6 range; percentiles show how extreme the corners are.
    let env = results.envelope();
    println!(
        "Total-carbon envelope: {}–{} kg (paper §6: 1,441–11,711 kg)",
        paper_num(env.total.lo.kilograms()),
        paper_num(env.total.hi.kilograms())
    );
    let table = TextTable::new(vec!["Statistic", "Total (kg CO2e)"])
        .title("Distribution over 12,000 scenarios")
        .row(vec!["min".to_string(), paper_num(env.total.lo.kilograms())])
        .row(vec![
            "p5".to_string(),
            paper_num(results.percentile(0.05).unwrap().kilograms()),
        ])
        .row(vec![
            "median".to_string(),
            paper_num(results.percentile(0.50).unwrap().kilograms()),
        ])
        .row(vec![
            "mean".to_string(),
            paper_num(results.mean_total().kilograms()),
        ])
        .row(vec![
            "p95".to_string(),
            paper_num(results.percentile(0.95).unwrap().kilograms()),
        ])
        .row(vec!["max".to_string(), paper_num(env.total.hi.kilograms())]);
    println!("{}", table.render());

    // 4. Grouped marginal analysis: pin each input in turn and measure
    //    the spread of mean totals across its samples — the batch
    //    analogue of a tornado chart. The widest spread names the input
    //    most worth measuring better.
    let mut spreads: Vec<(AxisId, f64)> = AxisId::ALL
        .iter()
        .map(|&axis| {
            let marginals = results.marginals(axis);
            let lo = marginals
                .iter()
                .map(|m| m.mean_total.kilograms())
                .fold(f64::INFINITY, f64::min);
            let hi = marginals
                .iter()
                .map(|m| m.mean_total.kilograms())
                .fold(f64::NEG_INFINITY, f64::max);
            (axis, hi - lo)
        })
        .collect();
    spreads.sort_by(|a, b| b.1.total_cmp(&a.1));

    let mut marg = TextTable::new(vec!["Input (pinned)", "Spread of mean totals (kg)"])
        .title("Which input buys the most certainty?");
    for (axis, spread) in &spreads {
        marg = marg.row(vec![space.axis_name(*axis).to_string(), paper_num(*spread)]);
    }
    println!("{}", marg.render());
    assert_eq!(
        spreads[0].0,
        AxisId::Ci,
        "carbon intensity dominates with 2022 grid ranges"
    );

    // 5. Drill into the dominant axis: the total's envelope conditional
    //    on each carbon-intensity sample.
    println!("Total-carbon range conditional on carbon intensity:");
    for m in results.marginals(AxisId::Ci).iter().step_by(4) {
        let ci = space.ci().samples()[m.sample_index];
        println!(
            "  {:>6.1} g/kWh: {:>6}–{:>6} kg (mean {:>6})",
            ci.grams_per_kwh(),
            paper_num(m.total.lo.kilograms()),
            paper_num(m.total.hi.kilograms()),
            paper_num(m.mean_total.kilograms()),
        );
    }

    // The corners must still bracket the paper's envelope (the dense
    // space includes the published corner scenarios).
    assert!(env.total.lo.kilograms() < 1_500.0);
    assert!(env.total.hi.kilograms() > 11_000.0);
}
