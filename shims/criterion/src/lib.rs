//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock harness with criterion's API shape: groups,
//! `bench_function` / `bench_with_input`, `sample_size`, `iter`, the
//! `criterion_group!` / `criterion_main!` macros, and `black_box`. Each
//! benchmark runs a short warm-up plus `sample_size` timed samples and
//! prints min/mean per-iteration times — no statistics engine, plots, or
//! saved baselines.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark context passed to `criterion_group!` targets.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Real criterion defaults to 100 samples; 20 keeps the shim's
        // whole-workspace `cargo bench` run in minutes, and every heavy
        // bench in this repo overrides it downward anyway.
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(None, &id.into(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(Some(&self.name), &id.into(), self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(Some(&self.name), &id.into(), self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a bare parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handle passed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `f`: a warm-up that also calibrates a batch size (so fast
    /// closures are timed in batches long enough that `Instant` overhead
    /// is negligible), then `sample_size` samples of per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        const TARGET_SAMPLE: Duration = Duration::from_micros(50);
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch: u32 = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        self.samples.clear();
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }
}

fn run_benchmark(
    group: Option<&str>,
    id: &BenchmarkId,
    sample_size: usize,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let label = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    let mut bencher = Bencher {
        samples: Vec::new(),
        target_samples: sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("bench {label:<50} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().unwrap();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "bench {label:<50} min {:>12} mean {:>12} ({} samples)",
        format_duration(*min),
        format_duration(mean),
        bencher.samples.len()
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
