//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock harness with criterion's API shape: groups,
//! `bench_function` / `bench_with_input`, `sample_size`, `iter`, the
//! `criterion_group!` / `criterion_main!` macros, and `black_box`. Each
//! benchmark runs a short warm-up plus `sample_size` timed samples and
//! prints min/mean per-iteration times — no statistics engine, plots, or
//! saved baselines.
//!
//! Beyond the console lines, every run is appended to a machine-readable
//! trajectory file (default `BENCH.json` at the workspace root,
//! overridable with the `BENCH_JSON` env var — point it at a
//! `BENCH_PR<n>.json` to record a PR's committed trajectory): a flat map
//! of benchmark id to `{min_ns, mean_ns, samples}`. `cargo bench` runs
//! each bench binary in sequence, so each binary merges its group's
//! entries into the file. CI regenerates the file and diffs it against
//! the committed baseline with the `bench_check` binary (see
//! [`parse_bench_json`] for the read side of the format).

#![deny(missing_docs)]

use std::fmt::Display;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One benchmark measurement: a [`write_bench_json`] queue entry and the
/// unit [`parse_bench_json`] hands back to trajectory consumers (the
/// `bench_check` regression gate).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchRecord {
    /// Benchmark id, `group/name[/param]`.
    pub id: String,
    /// Fastest observed per-iteration time (the regression-stable one).
    pub min_ns: u128,
    /// Mean per-iteration time across samples.
    pub mean_ns: u128,
    /// Number of timed samples taken.
    pub samples: usize,
}

/// Results recorded by this process, drained by [`write_bench_json`].
static RECORDED: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// The benchmark context passed to `criterion_group!` targets.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Real criterion defaults to 100 samples; 20 keeps the shim's
        // whole-workspace `cargo bench` run in minutes, and every heavy
        // bench in this repo overrides it downward anyway.
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(None, &id.into(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(Some(&self.name), &id.into(), self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(Some(&self.name), &id.into(), self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a bare parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handle passed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `f`: a warm-up that also calibrates a batch size (so fast
    /// closures are timed in batches long enough that `Instant` overhead
    /// is negligible), then `sample_size` samples of per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        const TARGET_SAMPLE: Duration = Duration::from_micros(50);
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch: u32 = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        self.samples.clear();
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }
}

fn run_benchmark(
    group: Option<&str>,
    id: &BenchmarkId,
    sample_size: usize,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let label = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    let mut bencher = Bencher {
        samples: Vec::new(),
        target_samples: sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("bench {label:<50} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().unwrap();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "bench {label:<50} min {:>12} mean {:>12} ({} samples)",
        format_duration(*min),
        format_duration(mean),
        bencher.samples.len()
    );
    RECORDED.lock().expect("bench registry").push(BenchRecord {
        id: label,
        min_ns: min.as_nanos(),
        mean_ns: mean.as_nanos(),
        samples: bencher.samples.len(),
    });
}

/// Resolves `name` against the workspace root: the nearest enclosing
/// directory holding a `Cargo.lock` (cargo runs bench binaries from the
/// package dir), else the current directory.
pub fn workspace_file(name: &str) -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join(name);
        }
        if !dir.pop() {
            return PathBuf::from(name);
        }
    }
}

/// Where the trajectory file lives: `$BENCH_JSON` when set, else
/// `BENCH.json` at the workspace root (see [`workspace_file`]). The
/// default is intentionally PR-agnostic — it is the scratch output CI
/// diffs against a committed `BENCH_PR<n>.json` baseline.
pub fn bench_json_path() -> PathBuf {
    if let Ok(p) = std::env::var("BENCH_JSON") {
        return PathBuf::from(p);
    }
    workspace_file("BENCH.json")
}

/// Parses entry lines of the trajectory file this shim itself writes
/// (one `"id": {"min_ns": …, "mean_ns": …, "samples": …},` per line).
/// Tolerant of an unreadable or foreign file: unparseable lines are
/// skipped, so the worst case is re-measuring (or, for the regression
/// gate, reporting an entry as missing) instead of crashing over a
/// stale artefact.
pub fn parse_bench_json(text: &str) -> Vec<BenchRecord> {
    fn field(rest: &str, key: &str) -> Option<u128> {
        let at = rest.find(key)? + key.len();
        let tail = rest[at..].trim_start_matches([':', ' ']);
        let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
        digits.parse().ok()
    }
    // Reads a JSON string body up to its unescaped closing quote,
    // undoing the `\\` / `\"` escapes [`write_bench_json`] emits, so
    // ids containing quotes round-trip and merge dedup matches them.
    fn unescape_id(stripped: &str) -> Option<(String, &str)> {
        let mut id = String::new();
        let mut chars = stripped.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => id.push(chars.next()?.1),
                '"' => return Some((id, &stripped[i + 1..])),
                _ => id.push(c),
            }
        }
        None
    }
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(stripped) = line.strip_prefix('"') else {
            continue;
        };
        let Some((id, rest)) = unescape_id(stripped) else {
            continue;
        };
        if id == "schema" {
            continue;
        }
        let (Some(min_ns), Some(mean_ns), Some(samples)) = (
            field(rest, "\"min_ns\""),
            field(rest, "\"mean_ns\""),
            field(rest, "\"samples\""),
        ) else {
            continue;
        };
        out.push(BenchRecord {
            id,
            min_ns,
            mean_ns,
            samples: samples as usize,
        });
    }
    out
}

/// Merges this process's recorded results into the trajectory file:
/// existing entries with the same id are replaced, everything else is
/// kept, and the file is rewritten sorted by id. Called by
/// [`criterion_main!`] after all groups have run.
pub fn write_bench_json() {
    let fresh = std::mem::take(&mut *RECORDED.lock().expect("bench registry"));
    if fresh.is_empty() {
        return;
    }
    let path = bench_json_path();
    let mut merged: Vec<BenchRecord> = std::fs::read_to_string(&path)
        .map(|text| parse_bench_json(&text))
        .unwrap_or_default();
    merged.retain(|old| !fresh.iter().any(|new| new.id == old.id));
    merged.extend(fresh);
    merged.sort_by(|a, b| a.id.cmp(&b.id));
    let mut body = String::from("{\n  \"schema\": \"iriscast-bench/v1\",\n  \"results\": {\n");
    for (i, r) in merged.iter().enumerate() {
        let comma = if i + 1 == merged.len() { "" } else { "," };
        // Bench ids are plain `group/name/param` strings; escape the two
        // JSON-significant characters anyway so the file always parses.
        let id = r.id.replace('\\', "\\\\").replace('"', "\\\"");
        body.push_str(&format!(
            "    \"{id}\": {{\"min_ns\": {}, \"mean_ns\": {}, \"samples\": {}}}{comma}\n",
            r.min_ns, r.mean_ns, r.samples
        ));
    }
    body.push_str("  }\n}\n");
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("bench trajectory written to {}", path.display());
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups, then flushing the
/// machine-readable trajectory file (see [`write_bench_json`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_bench_json();
        }
    };
}
