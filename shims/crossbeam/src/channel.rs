//! Offline stand-in for `crossbeam-channel`'s unbounded MPMC queue.
//!
//! Implements the surface the telemetry worker pool needs: [`unbounded`],
//! cloneable [`Sender`]/[`Receiver`], blocking [`Receiver::recv`],
//! non-blocking [`Receiver::try_recv`], and disconnect semantics (a
//! `recv` on an empty queue with no senders left returns [`RecvError`];
//! a `send` with no receivers left returns the value in [`SendError`]).
//! Backed by a `Mutex<VecDeque>` + `Condvar` — fairness and lock-free
//! speed are non-goals; the pool sends a handful of wake tokens per
//! dispatch.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// The send half could not deliver: every receiver is gone. Carries the
/// rejected value back to the caller, as crossbeam does.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// The receive half found the channel empty with every sender gone.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RecvError;

/// Why a [`Receiver::try_recv`] returned nothing.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is momentarily empty but senders remain.
    Empty,
    /// The queue is empty and every sender is gone.
    Disconnected,
}

struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// The sending half of an [`unbounded`] channel.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of an [`unbounded`] channel.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Enqueues `value`, waking one blocked receiver. Fails only when
    /// every [`Receiver`] has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.inner.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        let mut q = self.inner.queue.lock().expect("channel poisoned");
        q.push_back(value);
        drop(q);
        self.inner.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, Ordering::Relaxed);
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake everyone so blocked receivers can
            // observe the disconnect. The notify must be serialized
            // through the queue mutex: a receiver that loaded
            // `senders == 1` under the lock but has not yet entered
            // `wait` would otherwise miss this wakeup forever (the
            // decrement above is lock-free, so it can land inside that
            // window). Taking the lock blocks until the receiver is
            // actually waiting — and if the lock is poisoned we still
            // only need the acquisition, never the data.
            let _guard = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            self.inner.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a value arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.inner.queue.lock().expect("channel poisoned");
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            q = self.inner.ready.wait(q).expect("channel poisoned");
        }
    }

    /// Pops a value if one is queued right now.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.inner.queue.lock().expect("channel poisoned");
        if let Some(v) = q.pop_front() {
            return Ok(v);
        }
        if self.inner.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.receivers.fetch_add(1, Ordering::Relaxed);
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_a_single_consumer() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything() {
        let (tx, rx) = unbounded::<u64>();
        let n_producers = 4;
        let per_producer = 1_000u64;
        let total: u64 = std::thread::scope(|s| {
            for p in 0..n_producers {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..per_producer {
                        tx.send(p * per_producer + i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut sums = Vec::new();
            for _ in 0..3 {
                let rx = rx.clone();
                sums.push(s.spawn(move || {
                    let mut sum = 0u64;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                }));
            }
            drop(rx);
            sums.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let expect: u64 = (0..n_producers * per_producer).sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn blocking_recv_wakes_on_last_sender_drop() {
        // The disconnect notify is serialized through the queue mutex;
        // without that, a receiver between its senders-check and its
        // wait would sleep forever (lost wakeup).
        for _ in 0..100 {
            let (tx, rx) = unbounded::<u8>();
            std::thread::scope(|s| {
                let h = s.spawn(move || rx.recv());
                tx.send(1).unwrap();
                drop(tx);
                // First recv gets the value, second observes disconnect
                // — whichever interleaving, the thread must terminate.
                let _ = h.join().unwrap();
            });
        }
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded::<&'static str>();
        std::thread::scope(|s| {
            let h = s.spawn(move || rx.recv().unwrap());
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send("hello").unwrap();
            assert_eq!(h.join().unwrap(), "hello");
        });
    }
}
