//! Offline stand-in for `crossbeam-channel`'s unbounded MPMC queue.
//!
//! Implements the surface the telemetry worker pool and the assessment
//! serve loop need: [`unbounded`], cloneable [`Sender`]/[`Receiver`],
//! blocking [`Receiver::recv`], deadline-bounded
//! [`Receiver::recv_timeout`], non-blocking [`Receiver::try_recv`], and
//! disconnect semantics (a `recv` on an empty queue with no senders left
//! returns [`RecvError`]; a `send` with no receivers left returns the
//! value in [`SendError`]). Backed by a `Mutex<VecDeque>` + `Condvar` —
//! fairness and lock-free speed are non-goals; the pool sends a handful
//! of wake tokens per dispatch and the serve loop wakes at most once per
//! staleness window.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The send half could not deliver: every receiver is gone. Carries the
/// rejected value back to the caller, as crossbeam does.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// The receive half found the channel empty with every sender gone.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RecvError;

/// Why a [`Receiver::try_recv`] returned nothing.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is momentarily empty but senders remain.
    Empty,
    /// The queue is empty and every sender is gone.
    Disconnected,
}

/// Why a [`Receiver::recv_timeout`] returned nothing.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with the queue still empty (senders remain —
    /// a later `recv` may still succeed).
    Timeout,
    /// The queue is empty and every sender is gone; no later call can
    /// ever succeed.
    Disconnected,
}

struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// The sending half of an [`unbounded`] channel.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of an [`unbounded`] channel.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Enqueues `value`, waking one blocked receiver. Fails only when
    /// every [`Receiver`] has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.inner.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        let mut q = self.inner.queue.lock().expect("channel poisoned");
        q.push_back(value);
        drop(q);
        self.inner.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, Ordering::Relaxed);
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake everyone so blocked receivers can
            // observe the disconnect. The notify must be serialized
            // through the queue mutex: a receiver that loaded
            // `senders == 1` under the lock but has not yet entered
            // `wait` would otherwise miss this wakeup forever (the
            // decrement above is lock-free, so it can land inside that
            // window). Taking the lock blocks until the receiver is
            // actually waiting — and if the lock is poisoned we still
            // only need the acquisition, never the data.
            let _guard = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            self.inner.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a value arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.inner.queue.lock().expect("channel poisoned");
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            q = self.inner.ready.wait(q).expect("channel poisoned");
        }
    }

    /// Blocks until a value arrives, every sender is gone, or `timeout`
    /// elapses — the bounded wait a serve loop needs to enforce a
    /// staleness budget without busy-polling.
    ///
    /// Ordering mirrors crossbeam: a value already queued (or arriving
    /// within the window) wins over both error outcomes, and disconnect
    /// is only reported on an *empty* queue. The wait is deadline-based
    /// (`now + timeout` computed once), so spurious condvar wake-ups
    /// never extend the total wait.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.inner.queue.lock().expect("channel poisoned");
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()).filter(|d| {
                // A zero remainder is already past the deadline; waiting
                // on it would be an unbounded sleep on some platforms.
                !d.is_zero()
            }) else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (guard, _timed_out) = self
                .inner
                .ready
                .wait_timeout(q, remaining)
                .expect("channel poisoned");
            // Re-check the queue even on a timed-out wait: a send may
            // have landed in the race window between the wake-up and
            // re-acquiring the lock. The loop's deadline check decides
            // whether to wait again.
            q = guard;
        }
    }

    /// Pops a value if one is queued right now.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.inner.queue.lock().expect("channel poisoned");
        if let Some(v) = q.pop_front() {
            return Ok(v);
        }
        if self.inner.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.receivers.fetch_add(1, Ordering::Relaxed);
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_a_single_consumer() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything() {
        let (tx, rx) = unbounded::<u64>();
        let n_producers = 4;
        let per_producer = 1_000u64;
        let total: u64 = std::thread::scope(|s| {
            for p in 0..n_producers {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..per_producer {
                        tx.send(p * per_producer + i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut sums = Vec::new();
            for _ in 0..3 {
                let rx = rx.clone();
                sums.push(s.spawn(move || {
                    let mut sum = 0u64;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                }));
            }
            drop(rx);
            sums.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let expect: u64 = (0..n_producers * per_producer).sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn blocking_recv_wakes_on_last_sender_drop() {
        // The disconnect notify is serialized through the queue mutex;
        // without that, a receiver between its senders-check and its
        // wait would sleep forever (lost wakeup).
        for _ in 0..100 {
            let (tx, rx) = unbounded::<u8>();
            std::thread::scope(|s| {
                let h = s.spawn(move || rx.recv());
                tx.send(1).unwrap();
                drop(tx);
                // First recv gets the value, second observes disconnect
                // — whichever interleaving, the thread must terminate.
                let _ = h.join().unwrap();
            });
        }
    }

    #[test]
    fn recv_timeout_returns_queued_value_immediately() {
        let (tx, rx) = unbounded();
        tx.send(42).unwrap();
        let start = Instant::now();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn recv_timeout_times_out_on_an_empty_connected_channel() {
        let (tx, rx) = unbounded::<u8>();
        let start = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(20));
        // A zero timeout on an empty queue is an immediate Timeout, not
        // an unbounded wait.
        assert_eq!(
            rx.recv_timeout(Duration::ZERO),
            Err(RecvTimeoutError::Timeout)
        );
        // The channel is still usable afterwards.
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
    }

    #[test]
    fn recv_timeout_wakes_on_send_before_the_deadline() {
        let (tx, rx) = unbounded::<&'static str>();
        std::thread::scope(|s| {
            let h = s.spawn(move || rx.recv_timeout(Duration::from_secs(30)));
            std::thread::sleep(Duration::from_millis(10));
            tx.send("fresh").unwrap();
            assert_eq!(h.join().unwrap(), Ok("fresh"));
        });
    }

    #[test]
    fn recv_timeout_observes_disconnect() {
        // Disconnect before the call.
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)),
            Err(RecvTimeoutError::Disconnected)
        );
        // Disconnect during the wait: must wake promptly, not sleep out
        // the full deadline. Queued values still drain first.
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        std::thread::scope(|s| {
            let h = s.spawn(move || {
                let first = rx.recv_timeout(Duration::from_secs(30));
                let second = rx.recv_timeout(Duration::from_secs(30));
                (first, second)
            });
            std::thread::sleep(Duration::from_millis(10));
            drop(tx);
            let (first, second) = h.join().unwrap();
            assert_eq!(first, Ok(1));
            assert_eq!(second, Err(RecvTimeoutError::Disconnected));
        });
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded::<&'static str>();
        std::thread::scope(|s| {
            let h = s.spawn(move || rx.recv().unwrap());
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send("hello").unwrap();
            assert_eq!(h.join().unwrap(), "hello");
        });
    }
}
