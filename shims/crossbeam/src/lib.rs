//! Offline stand-in for `crossbeam`: scoped threads backed by
//! `std::thread::scope` (stable since 1.63, it provides the same
//! capability crossbeam pioneered) and the [`channel`] module's
//! multi-producer multi-consumer queues (the slice of
//! `crossbeam-channel` the telemetry worker pool uses).
//!
//! One intentional divergence: crossbeam's `spawn` closure receives
//! `&Scope` for nested spawning; iriscast always ignores that argument
//! (`|_| ...`), so the shim passes `()` instead — which keeps the
//! lifetimes trivial.

#![deny(missing_docs)]

pub mod channel;

/// Result type of [`scope`]: `Err` would carry a child panic payload, but
/// this shim propagates child panics directly (std semantics), so callers'
/// `.expect(...)` simply never fires.
pub type ScopeResult<T> = Result<T, Box<dyn std::any::Any + Send + 'static>>;

/// Handle for spawning threads inside a [`scope`] call.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure's argument is a placeholder
    /// (crossbeam passes a re-borrowed `&Scope` there).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(()))
    }
}

/// Runs `f` with a scope handle; all spawned threads are joined before
/// this returns. A panicking child re-panics here (std semantics) rather
/// than surfacing through the `Err` variant.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawned_threads_all_run_and_join() {
        let counter = AtomicUsize::new(0);
        super::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn scope_returns_closure_value() {
        let v = super::scope(|scope| {
            let h = scope.spawn(|_| 21);
            h.join().unwrap() * 2
        })
        .unwrap();
        assert_eq!(v, 42);
    }
}
