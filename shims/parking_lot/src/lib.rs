//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only [`Mutex`] is provided (the one type iriscast uses). Poisoning is
//! transparently ignored, matching parking_lot's non-poisoning semantics.

#![deny(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion lock with parking_lot's panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// The guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available. Unlike `std`, never
    /// returns a poison error: a panicked prior holder is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
