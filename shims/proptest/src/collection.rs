//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A strategy for `Vec<S::Value>` with length drawn from `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(
        len.start < len.end,
        "prop::collection::vec: empty length range"
    );
    VecStrategy { element, len }
}

/// The strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.rng().gen_range(self.len.clone());
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
