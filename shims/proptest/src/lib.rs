//! Offline stand-in for `proptest`.
//!
//! Implements the subset the iriscast test suites use: the [`proptest!`]
//! macro (with optional `#![proptest_config(...)]`), range and tuple
//! strategies, [`Just`], `prop_map`, weighted [`prop_oneof!`],
//! `prop::collection::vec`, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * no shrinking, and the panic message carries the failed assertion
//!   plus the case index — not the sampled input values (printing them
//!   would require `Debug` on every strategy output);
//! * the RNG is seeded deterministically per test from the test's name,
//!   so re-running the test replays the identical input sequence — to see
//!   a failing case's inputs, add a `dbg!` at the reported case index;
//! * `prop_assume!` skips the current case rather than drawing a
//!   replacement (the suites use it to discard rare degenerate inputs,
//!   where skipping is statistically equivalent).

#![deny(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestRng};

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// Mirror of the `proptest::prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl!{ [$cfg] $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!{
            [$crate::test_runner::ProptestConfig::default()] $($rest)*
        }
    };
}

/// Internal muncher for [`proptest!`]: expands one test fn, recurses on
/// the rest.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( [$cfg:expr] ) => {};
    ( [$cfg:expr]
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                let ( $($arg,)* ) = (
                    $( $crate::strategy::Strategy::sample(&($strat), &mut __rng), )*
                );
                // The closure gives `prop_assume!` an early exit (`return`
                // skips just this case).
                let __case_body = move || { $body };
                // Name the failing case: seeding is deterministic per test
                // name, so the index pinpoints the exact inputs on re-run.
                if let Err(__panic) = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(__case_body),
                ) {
                    eprintln!(
                        "proptest {}: case {}/{} failed (deterministic: \
                         re-running replays the same inputs)",
                        stringify!($name),
                        __case,
                        __config.cases,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_impl!{ [$cfg] $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Skips the current case when its inputs are degenerate.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return;
        }
    };
}

/// Chooses among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strat:expr ),+ $(,)? ) => {
        $crate::strategy::OneOf::new(vec![
            $( (($weight) as f64, $crate::strategy::boxed($strat)) ),+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::OneOf::new(vec![
            $( (1.0, $crate::strategy::boxed($strat)) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// End-to-end macro smoke test: strategies, tuples, map, assume.
        #[test]
        fn macro_machinery_works(
            x in 0.0..100.0f64,
            n in 1usize..20,
            v in prop::collection::vec(0i64..10, 1..8),
        ) {
            prop_assume!(n > 0);
            prop_assert!((0.0..100.0).contains(&x));
            prop_assert!(v.len() < 8 && v.iter().all(|&e| (0..10).contains(&e)));
            prop_assert_eq!(n + 1, 1 + n);
        }

        /// A failing property must panic (and name the case on stderr).
        #[test]
        #[should_panic]
        fn failing_property_panics(x in 0.0..1.0f64) {
            prop_assert!(x < 0.0, "x = {x}");
        }
    }

    #[test]
    fn oneof_and_just_compose() {
        let strat = prop_oneof![
            3 => 0.0..1.0f64,
            1 => Just(f64::NAN),
        ];
        let mut rng = crate::test_runner::TestRng::for_test("oneof");
        let mut nans = 0;
        for _ in 0..1_000 {
            let v = Strategy::sample(&strat, &mut rng);
            if v.is_nan() {
                nans += 1;
            } else {
                assert!((0.0..1.0).contains(&v));
            }
        }
        // ~25% weight: loose bounds, deterministic seed.
        assert!(nans > 150 && nans < 350, "nans = {nans}");
    }
}
