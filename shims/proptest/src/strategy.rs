//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a sampler. `prop_map` and boxing compose the same way.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Boxes a strategy for heterogeneous storage (e.g. [`OneOf`] arms).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted choice among boxed strategies ([`crate::prop_oneof!`]).
pub struct OneOf<T> {
    arms: Vec<(f64, Box<dyn Strategy<Value = T>>)>,
}

impl<T> OneOf<T> {
    /// Builds from `(weight, strategy)` pairs.
    ///
    /// # Panics
    /// Panics if `arms` is empty or total weight is not positive.
    pub fn new(arms: Vec<(f64, Box<dyn Strategy<Value = T>>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(
            arms.iter().map(|(w, _)| *w).sum::<f64>() > 0.0,
            "prop_oneof! needs positive total weight"
        );
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let total: f64 = self.arms.iter().map(|(w, _)| *w).sum();
        let mut pick = rng.rng().gen_range(0.0..total);
        for (weight, strat) in &self.arms {
            if pick < *weight {
                return strat.sample(rng);
            }
            pick -= weight;
        }
        self.arms.last().unwrap().1.sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(f64, f32, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
