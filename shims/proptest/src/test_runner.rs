//! Test configuration and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many cases each property test runs (matches the only knob the
/// iriscast suites touch).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; kept identical so coverage is
        // comparable.
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies, seeded from the test's name so each test
/// has a fixed, independent stream (failures reproduce on re-run).
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a over the bytes).
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash),
        }
    }

    /// The underlying generator (for strategies to draw from).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}
