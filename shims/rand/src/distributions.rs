//! Non-uniform distributions: the standard normal, two ways.
//!
//! The telemetry hot loop draws millions of Gaussian meter-noise variates
//! per collect, so the sampler's cost is directly visible in the paper's
//! Table 2 pipeline wall-clock. Two samplers are provided:
//!
//! * [`StandardNormal`] — the fast path: Marsaglia–Tsang ziggurat with
//!   256 layers. ~99% of draws cost one `next_u64`, a table lookup and a
//!   multiply; no transcendentals outside the rare wedge/tail cases.
//! * [`BoxMullerNormal`] — the legacy sampler (one `ln`, one `sqrt`, one
//!   `cos` per draw), bit-identical to the inline Box–Muller expression
//!   the meter error model used before the ziggurat landed. Kept for
//!   bit-compatibility tests and as a cross-check of the ziggurat's
//!   moments.
//!
//! Enabling the `boxmuller-normal` cargo feature makes [`StandardNormal`]
//! delegate to the Box–Muller path, so downstream code can reproduce
//! pre-ziggurat streams without touching call sites.

use crate::{RngCore, SampleRange, Standard};
use std::sync::LazyLock;

/// Types that sample values of `T` from an RNG.
///
/// The shim equivalent of `rand::distributions::Distribution`, reduced to
/// the surface iriscast uses (`sample` only, `Sized` RNGs).
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore>(&self, rng: &mut R) -> T;
}

/// The standard normal distribution `N(0, 1)` — ziggurat fast path.
///
/// With the `boxmuller-normal` feature enabled this delegates to
/// [`BoxMullerNormal`] instead, reproducing pre-ziggurat streams bit for
/// bit.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    #[inline]
    fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        #[cfg(feature = "boxmuller-normal")]
        {
            BoxMullerNormal.sample(rng)
        }
        #[cfg(not(feature = "boxmuller-normal"))]
        {
            sample_ziggurat(rng)
        }
    }
}

/// The standard normal via the polar-free Box–Muller transform —
/// bit-identical to the expression the telemetry meter model inlined
/// before PR 5 (`z = √(−2 ln u₁) · cos(τ u₂)` with `u₁ ∈ [1e−12, 1)`,
/// `u₂ ∈ [0, 1)`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BoxMullerNormal;

impl Distribution<f64> for BoxMullerNormal {
    #[inline]
    fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        let u1 = (1e-12..1.0f64).sample_from(rng);
        let u2 = (0.0..1.0f64).sample_from(rng);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Number of ziggurat layers. 256 lets the layer index come straight off
/// the low byte of one `next_u64` draw.
const LAYERS: usize = 256;

/// The rightmost layer edge for a 256-layer standard-normal ziggurat
/// (the canonical constant, e.g. rand_distr's `ZIG_NORM_R`).
const ZIG_R: f64 = 3.654_152_885_361_009;

/// Layer tables: `x[i]` edges (decreasing, `x[256] = 0`) and
/// `f[i] = exp(−x[i]²/2)` heights (increasing, `f[256] = 1`).
struct ZigTables {
    x: [f64; LAYERS + 1],
    f: [f64; LAYERS + 1],
}

/// Unnormalised standard-normal density.
#[inline]
fn pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp()
}

/// Builds the tables at first use. The construction is the standard one:
/// the common layer area `v = R·f(R) + ∫_R^∞ f` (tail integrated
/// numerically by Simpson's rule, far below f64 noise at this
/// smoothness), then edges walk down from `x[1] = R` via
/// `x[i+1] = f⁻¹(f(x[i]) + v/x[i])`. `x[0] = v/f(R)` is the base layer's
/// virtual width, which makes the fast-path acceptance test uniform
/// across layers with the tail folded into layer 0.
fn build_tables() -> ZigTables {
    // ∫_R^∞ exp(−t²/2) dt: the integrand at R+12 is ~1e−54 of its value
    // at R, so a finite Simpson panel over [R, R+12] is exact to f64.
    let (lo, hi, n) = (ZIG_R, ZIG_R + 12.0, 1 << 14);
    let h = (hi - lo) / n as f64;
    let mut tail = pdf(lo) + pdf(hi);
    for k in 1..n {
        let w = if k % 2 == 1 { 4.0 } else { 2.0 };
        tail += w * pdf(lo + h * k as f64);
    }
    tail *= h / 3.0;

    let v = ZIG_R * pdf(ZIG_R) + tail;
    let mut x = [0.0; LAYERS + 1];
    x[0] = v / pdf(ZIG_R);
    x[1] = ZIG_R;
    for i in 2..LAYERS {
        // Clamp against rounding at the top of the ziggurat, where the
        // argument approaches f(0) = 1 and ln approaches 0.
        let w = (v / x[i - 1] + pdf(x[i - 1])).min(1.0);
        x[i] = (-2.0 * w.ln()).max(0.0).sqrt();
    }
    x[LAYERS] = 0.0;
    let mut f = [0.0; LAYERS + 1];
    for i in 0..=LAYERS {
        f[i] = pdf(x[i]);
    }
    ZigTables { x, f }
}

static TABLES: LazyLock<ZigTables> = LazyLock::new(build_tables);

/// One ziggurat draw: layer index from the low byte, sign from bit 8,
/// 53-bit uniform from the top bits — all carved out of a single
/// `next_u64` on the fast path.
#[inline]
fn sample_ziggurat<R: RngCore>(rng: &mut R) -> f64 {
    let t: &ZigTables = &TABLES;
    loop {
        let bits = rng.next_u64();
        let i = (bits & 0xFF) as usize;
        let sign = if bits & 0x100 == 0 { 1.0 } else { -1.0 };
        let u = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let x = u * t.x[i];
        if x < t.x[i + 1] {
            // Strictly inside the next layer's width: uniformly covered.
            return sign * x;
        }
        if i == 0 {
            return sign * sample_tail(rng);
        }
        // Wedge: y uniform over the layer's height band [f(xᵢ), f(xᵢ₊₁)].
        let y = t.f[i] + (t.f[i + 1] - t.f[i]) * f64::sample_standard(rng);
        if y < pdf(x) {
            return sign * x;
        }
    }
}

/// Marsaglia's exponential-majorant tail sampler for `x > R`.
#[inline]
fn sample_tail<R: RngCore>(rng: &mut R) -> f64 {
    loop {
        // 1 − u ∈ (0, 1] keeps the logs finite.
        let x = -(1.0 - f64::sample_standard(rng)).ln() / ZIG_R;
        let y = -(1.0 - f64::sample_standard(rng)).ln();
        if 2.0 * y >= x * x {
            return ZIG_R + x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    /// Draws `n` samples and returns (mean, sd, |z|>1.96 mass, |z|>3 mass).
    fn moments(n: usize, seed: u64) -> (f64, f64, f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut sum, mut sumsq) = (0.0f64, 0.0f64);
        let (mut beyond_196, mut beyond_3) = (0usize, 0usize);
        for _ in 0..n {
            let z: f64 = rng.sample(StandardNormal);
            sum += z;
            sumsq += z * z;
            if z.abs() > 1.96 {
                beyond_196 += 1;
            }
            if z.abs() > 3.0 {
                beyond_3 += 1;
            }
        }
        let mean = sum / n as f64;
        let sd = (sumsq / n as f64 - mean * mean).sqrt();
        (
            mean,
            sd,
            beyond_196 as f64 / n as f64,
            beyond_3 as f64 / n as f64,
        )
    }

    #[test]
    fn moments_and_tail_mass_at_one_million() {
        // σ/√n = 1e−3 at n = 1e6: the bounds below are ≥ 5 standard
        // errors, loose enough to never flake, tight enough to catch a
        // wrong table or a mis-sampled wedge.
        let (mean, sd, p196, p3) = moments(1_000_000, 0x5EED);
        assert!(mean.abs() < 0.005, "mean {mean}");
        assert!((sd - 1.0).abs() < 0.005, "sd {sd}");
        assert!((p196 - 0.05).abs() < 0.002, "P(|z|>1.96) = {p196}");
        assert!((p3 - 0.0027).abs() < 0.0008, "P(|z|>3) = {p3}");
    }

    #[test]
    fn deep_tail_is_reachable() {
        // P(|z| > 3.7) ≈ 2.2e−4 → ~215 expected in 1e6 draws. A ziggurat
        // with a broken layer-0/tail case would produce none.
        let mut rng = StdRng::seed_from_u64(7);
        let deep = (0..1_000_000)
            .filter(|_| rng.sample(StandardNormal).abs() > 3.7)
            .count();
        assert!((50..600).contains(&deep), "deep-tail count {deep}");
    }

    #[test]
    fn symmetric_about_zero() {
        let mut rng = StdRng::seed_from_u64(11);
        let neg = (0..100_000)
            .filter(|_| rng.sample(StandardNormal) < 0.0)
            .count();
        let frac = neg as f64 / 100_000.0;
        assert!((frac - 0.5).abs() < 0.01, "negative fraction {frac}");
    }

    #[test]
    fn cross_seed_determinism() {
        let draw = |seed: u64| -> Vec<f64> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..1_000).map(|_| rng.sample(StandardNormal)).collect()
        };
        assert_eq!(draw(42), draw(42), "same seed must give the same stream");
        assert_ne!(draw(42), draw(43), "different seeds must diverge");
    }

    #[test]
    fn boxmuller_matches_legacy_inline_expression() {
        // The meter error model used to inline exactly this; the named
        // sampler must stay bit-identical so the `boxmuller-normal`
        // feature reproduces pre-ziggurat streams.
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..1_000 {
            let u1: f64 = a.gen_range(1e-12..1.0);
            let u2: f64 = a.gen_range(0.0..1.0);
            let legacy = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let z: f64 = b.sample(BoxMullerNormal);
            assert_eq!(legacy.to_bits(), z.to_bits());
        }
    }

    #[test]
    fn boxmuller_moments_agree_with_ziggurat() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0f64, 0.0);
        for _ in 0..n {
            let z: f64 = rng.sample(BoxMullerNormal);
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let sd = (sumsq / n as f64 - mean * mean).sqrt();
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((sd - 1.0).abs() < 0.01, "sd {sd}");
    }

    #[cfg(not(feature = "boxmuller-normal"))]
    #[test]
    fn ziggurat_tables_are_consistent() {
        let t: &ZigTables = &TABLES;
        // Edges strictly decrease to 0; heights strictly increase to 1.
        for i in 0..LAYERS {
            assert!(t.x[i] > t.x[i + 1], "x not decreasing at {i}");
            assert!(t.f[i] < t.f[i + 1], "f not increasing at {i}");
        }
        assert_eq!(t.x[LAYERS], 0.0);
        assert_eq!(t.f[LAYERS], 1.0);
        assert_eq!(t.x[1], ZIG_R);
        // Equal areas: every layer's rectangle matches layer 1's —
        // including the forced top layer [0, x₂₅₅] × [f(x₂₅₅), 1], whose
        // area only equals v when R is the true closure constant.
        let v = t.x[1] * (t.f[2] - t.f[1]);
        for i in 1..LAYERS {
            let area = t.x[i] * (t.f[i + 1] - t.f[i]);
            assert!((area - v).abs() < 1e-9, "layer {i} area {area} vs {v}");
        }
    }
}
