//! Offline stand-in for the `rand` crate.
//!
//! Implements the slice of the rand 0.8 API the iriscast crates use:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and the [`Rng`]
//! extension methods `gen`, `gen_range` (half-open and inclusive ranges
//! over the common numeric types), `gen_bool`, and `sample` over the
//! [`distributions`] module (ziggurat [`StandardNormal`], legacy
//! [`BoxMullerNormal`]).
//!
//! `StdRng` is xoshiro256++ seeded via SplitMix64 — deterministic across
//! platforms and runs, which is what the simulation code actually relies
//! on (the seed contract is "same seed, same stream", not any particular
//! stream).

#![deny(missing_docs)]

pub mod distributions;

pub use distributions::{BoxMullerNormal, Distribution, StandardNormal};

use std::ops::{Range, RangeInclusive};

/// Pseudo-random core: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T` (for `f64`,
    /// uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Draws one sample from `distr` (e.g. [`StandardNormal`]).
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from an RNG with no parameters.
pub trait Standard: Sized {
    /// Draws one standard sample.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * unit;
        // start + span*unit can round up to exactly `end` (e.g.
        // 1.0 + 2.0*(1 - 2^-53) ties-to-even to 3.0); keep half-open.
        if v < self.end {
            v
        } else {
            self.end.next_down()
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * unit
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + (self.end - self.start) * f32::sample_standard(rng);
        if v < self.end {
            v
        } else {
            self.end.next_down()
        }
    }
}

impl SampleRange for RangeInclusive<f32> {
    type Output = f32;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / ((1u32 << 24) - 1) as f32);
        lo + (hi - lo) * unit
    }
}

/// Uniform integer in `[0, span)` by widening multiply (Lemire's method,
/// without the rejection step — the tiny modulo bias is irrelevant for
/// simulation inputs).
fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = uniform_below(rng, span);
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let offset = uniform_below(rng, span as u64);
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_bounds_and_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn half_open_float_range_excludes_end() {
        // A max-magnitude unit draw would otherwise round start+span*unit
        // up to exactly `end` for ranges like 1.0..3.0.
        struct MaxRng;
        impl RngCore for MaxRng {
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let v = MaxRng.gen_range(1.0..3.0f64);
        assert!(v < 3.0, "v = {v}");
        let w = MaxRng.gen_range(0.5f32..1.5);
        assert!(w < 1.5, "w = {w}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let x = rng.gen_range(-5.0..5.0);
            assert!((-5.0..5.0).contains(&x));
            let n = rng.gen_range(3i64..17);
            assert!((3..17).contains(&n));
            let m = rng.gen_range(0usize..=9);
            assert!(m <= 9);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
