//! Deserialization: reconstructing typed data from a [`Value`] tree.

use crate::value::Value;
use std::fmt;

/// Deserialization failure: a human-readable description of the mismatch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `value` into `Self`, or explains why it cannot.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// The value to use when a struct field is absent from the input —
    /// `None` means "absence is an error". Overridden by `Option<T>`,
    /// matching real serde where a missing optional field is `None`.
    fn absent() -> Option<Self> {
        None
    }
}

/// Looks up `key` in a decoded object and deserializes it — the helper the
/// derive macro calls once per struct field.
pub fn field<T: Deserialize>(
    fields: &[(String, Value)],
    type_name: &str,
    key: &str,
) -> Result<T, Error> {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error(format!("{type_name}.{key}: {e}"))),
        None => T::absent().ok_or_else(|| Error(format!("{type_name}: missing field `{key}`"))),
    }
}

fn int_of(value: &Value) -> Option<i128> {
    match value {
        Value::Int(i) => Some(i128::from(*i)),
        Value::UInt(u) => Some(i128::from(*u)),
        Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(*f as i128),
        _ => None,
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = int_of(value)
                    .ok_or_else(|| Error(format!(
                        "expected integer, found {}", value.kind()
                    )))?;
                <$t>::try_from(wide).map_err(|_| {
                    Error(format!("integer {wide} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            // Non-finite floats serialize as null (JSON has no NaN).
            Value::Null => Ok(f64::NAN),
            other => Err(Error(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error(format!("expected single character, found {s:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error(format!("expected array, found {}", value.kind())))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error(format!("expected array, found {}", value.kind())))?;
        if items.len() != N {
            return Err(Error(format!(
                "expected array of {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error("array length changed during parse".to_string()))
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! impl_de_tuple {
    ($len:expr; $($name:ident : $idx:tt),+) => {
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| {
                    Error(format!("expected array, found {}", value.kind()))
                })?;
                if items.len() != $len {
                    return Err(Error(format!(
                        "expected {}-tuple, found array of {}", $len, items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    };
}
impl_de_tuple!(1; A: 0);
impl_de_tuple!(2; A: 0, B: 1);
impl_de_tuple!(3; A: 0, B: 1, C: 2);
impl_de_tuple!(4; A: 0, B: 1, C: 2, D: 3);
