//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no crates.io access, so
//! this workspace ships a minimal serialization framework under the same
//! crate name, covering exactly the API surface the iriscast crates use:
//!
//! * `#[derive(Serialize, Deserialize)]` on named-field structs (including
//!   single-type-parameter generics), tuple/newtype structs, and enums with
//!   unit, tuple, and struct variants (externally tagged, like real serde);
//! * the `#[serde(try_from = "T", into = "T")]` container attribute;
//! * a self-describing [`value::Value`] tree that the companion
//!   `serde_json` shim renders to and parses from JSON.
//!
//! The data model is deliberately value-based (`Serialize::to_value` /
//! `Deserialize::from_value`) rather than visitor-based: round-tripping
//! through JSON is the only requirement here, and a value tree keeps the
//! hand-written derive macro small and auditable.

#![deny(missing_docs)]

pub mod de;
pub mod ser;
pub mod value;

pub use de::{Deserialize, Error};
pub use ser::Serialize;
pub use serde_derive::{Deserialize, Serialize};
