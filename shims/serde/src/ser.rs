//! Serialization: anything that can render itself into a [`Value`].

use crate::value::Value;

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_ser_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}
impl_ser_tuple!(A: 0);
impl_ser_tuple!(A: 0, B: 1);
impl_ser_tuple!(A: 0, B: 1, C: 2);
impl_ser_tuple!(A: 0, B: 1, C: 2, D: 3);

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}
