//! The self-describing value tree shared by `serde` impls and the
//! `serde_json` shim.

/// A dynamically typed serialized value.
///
/// Integers keep their signedness so that `i64`/`u64` fields round-trip
/// exactly (no detour through `f64`). Object fields preserve insertion
/// order, matching how the derive macro emits struct fields.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`. Also used for `Option::None` and non-finite floats.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (used when the value exceeds `i64::MAX` or the
    /// source type is unsigned).
    UInt(u64),
    /// A binary64 float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object, or `None` for any other variant.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array, or `None` for any other variant.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, or `None` for any other variant.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}
