//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros
//! (no `syn`/`quote` — the build environment has no crates.io access).
//! The item is parsed with a small token-tree walker (the private `parse`
//! module), and the
//! impls are emitted as source strings targeting the value-based traits of
//! the companion `serde` shim.
//!
//! Supported shapes — exactly what the iriscast crates need:
//!
//! * structs with named fields, including generics (`TriEstimate<T>`);
//! * tuple structs (newtypes serialize transparently, like real serde);
//! * enums with unit, tuple, and struct variants (externally tagged);
//! * the `#[serde(try_from = "T", into = "T")]` container attribute.

mod parse;

use parse::{Fields, Input, Variant};
use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse::parse(input);
    expand_serialize(&item)
        .parse()
        .expect("serde_derive emitted invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse::parse(input);
    expand_deserialize(&item)
        .parse()
        .expect("serde_derive emitted invalid Rust")
}

/// `impl<T: Bounds + Extra> Trait for Name<T>` header pieces.
fn impl_header(item: &Input, extra_bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        return (String::new(), String::new());
    }
    let impl_params: Vec<String> = item
        .generics
        .iter()
        .map(|p| {
            let mut s = p.name.clone();
            s.push_str(": ");
            if !p.bounds.is_empty() {
                s.push_str(&p.bounds);
                s.push_str(" + ");
            }
            s.push_str(extra_bound);
            s
        })
        .collect();
    let ty_params: Vec<String> = item.generics.iter().map(|p| p.name.clone()).collect();
    (
        format!("<{}>", impl_params.join(", ")),
        format!("<{}>", ty_params.join(", ")),
    )
}

fn expand_serialize(item: &Input) -> String {
    let (impl_generics, ty_generics) = impl_header(item, "::serde::ser::Serialize");
    let name = &item.name;
    let body = if let Some(into) = &item.into_type {
        format!(
            "let __converted: {into} = ::core::clone::Clone::clone(self).into();\n\
             ::serde::ser::Serialize::to_value(&__converted)"
        )
    } else {
        match &item.fields {
            Fields::Named(fields) => serialize_named_fields(fields, "self.", "&"),
            Fields::Tuple(1) => "::serde::ser::Serialize::to_value(&self.0)".to_string(),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::ser::Serialize::to_value(&self.{i})"))
                    .collect();
                format!(
                    "::serde::value::Value::Array(::std::vec![{}])",
                    items.join(", ")
                )
            }
            Fields::Unit => {
                format!("::serde::value::Value::Str(::std::string::String::from(\"{name}\"))")
            }
            Fields::Enum(variants) => serialize_enum(name, variants),
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::ser::Serialize for {name}{ty_generics} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n\
         }}"
    )
}

/// `Value::Object(vec![("f", to_value(&<prefix>f)), ...])`; `deref` is
/// prepended to each access (used for `*` on match bindings).
fn serialize_named_fields(fields: &[String], prefix: &str, deref: &str) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::ser::Serialize::to_value({deref}{prefix}{f}))"
            )
        })
        .collect();
    format!(
        "::serde::value::Value::Object(::std::vec![{}])",
        items.join(", ")
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        let arm = match &v.fields {
            Fields::Unit => format!(
                "{name}::{vname} => ::serde::value::Value::Str(\
                 ::std::string::String::from(\"{vname}\")),"
            ),
            Fields::Tuple(1) => format!(
                "{name}::{vname}(__f0) => ::serde::value::Value::Object(::std::vec![(\
                 ::std::string::String::from(\"{vname}\"), \
                 ::serde::ser::Serialize::to_value(__f0))]),"
            ),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::ser::Serialize::to_value({b})"))
                    .collect();
                format!(
                    "{name}::{vname}({}) => ::serde::value::Value::Object(::std::vec![(\
                     ::std::string::String::from(\"{vname}\"), \
                     ::serde::value::Value::Array(::std::vec![{}]))]),",
                    binds.join(", "),
                    items.join(", ")
                )
            }
            Fields::Named(fields) => {
                let inner = serialize_named_fields(fields, "", "");
                format!(
                    "{name}::{vname} {{ {} }} => \
                     ::serde::value::Value::Object(::std::vec![(\
                     ::std::string::String::from(\"{vname}\"), {inner})]),",
                    fields.join(", ")
                )
            }
            Fields::Enum(_) => unreachable!("variant cannot itself be an enum"),
        };
        arms.push(arm);
    }
    format!("match self {{\n{}\n}}", arms.join("\n"))
}

fn expand_deserialize(item: &Input) -> String {
    let (impl_generics, ty_generics) = impl_header(item, "::serde::de::Deserialize");
    let name = &item.name;
    let body = if let Some(try_from) = &item.try_from_type {
        format!(
            "let __raw: {try_from} = ::serde::de::Deserialize::from_value(__value)?;\n\
             <Self as ::core::convert::TryFrom<{try_from}>>::try_from(__raw)\
             .map_err(::serde::de::Error::custom)"
        )
    } else {
        match &item.fields {
            Fields::Named(fields) => {
                let ctor = deserialize_named_fields(name, name, fields, "__fields");
                format!(
                    "let __fields = __value.as_object().ok_or_else(|| \
                     ::serde::de::Error::custom(::std::format!(\
                     \"{name}: expected object, found {{}}\", __value.kind())))?;\n\
                     ::std::result::Result::Ok({ctor})"
                )
            }
            Fields::Tuple(1) => format!(
                "::std::result::Result::Ok({name}(\
                 ::serde::de::Deserialize::from_value(__value)?))"
            ),
            Fields::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::de::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "let __items = __value.as_array().ok_or_else(|| \
                     ::serde::de::Error::custom(::std::format!(\
                     \"{name}: expected array, found {{}}\", __value.kind())))?;\n\
                     if __items.len() != {n} {{\n\
                         return ::std::result::Result::Err(::serde::de::Error::custom(\
                         ::std::format!(\"{name}: expected {n} elements, found {{}}\", \
                         __items.len())));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({}))",
                    elems.join(", ")
                )
            }
            Fields::Unit => format!(
                "match __value.as_str() {{\n\
                     ::std::option::Option::Some(\"{name}\") => \
                         ::std::result::Result::Ok({name}),\n\
                     _ => ::std::result::Result::Err(::serde::de::Error::custom(\
                         \"expected unit struct {name}\")),\n\
                 }}"
            ),
            Fields::Enum(variants) => deserialize_enum(name, variants),
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::de::Deserialize for {name}{ty_generics} {{\n\
             fn from_value(__value: &::serde::value::Value) \
             -> ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n\
         }}"
    )
}

/// `Path { f: field(fields, label, "f")?, ... }`
fn deserialize_named_fields(path: &str, label: &str, fields: &[String], src: &str) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::de::field({src}, \"{label}\", \"{f}\")?"))
        .collect();
    format!("{path} {{ {} }}", items.join(", "))
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = Vec::new();
    let mut tagged_arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit => unit_arms.push(format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
            )),
            Fields::Tuple(1) => tagged_arms.push(format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                 ::serde::de::Deserialize::from_value(__payload)?)),"
            )),
            Fields::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::de::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                tagged_arms.push(format!(
                    "\"{vname}\" => {{\n\
                         let __items = __payload.as_array().ok_or_else(|| \
                         ::serde::de::Error::custom(\
                         \"{name}::{vname}: expected array payload\"))?;\n\
                         if __items.len() != {n} {{\n\
                             return ::std::result::Result::Err(\
                             ::serde::de::Error::custom(\
                             \"{name}::{vname}: wrong tuple arity\"));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}::{vname}({}))\n\
                     }}",
                    elems.join(", ")
                ));
            }
            Fields::Named(fields) => {
                let label = format!("{name}::{vname}");
                let ctor =
                    deserialize_named_fields(&format!("{name}::{vname}"), &label, fields, "__vf");
                tagged_arms.push(format!(
                    "\"{vname}\" => {{\n\
                         let __vf = __payload.as_object().ok_or_else(|| \
                         ::serde::de::Error::custom(\
                         \"{label}: expected object payload\"))?;\n\
                         ::std::result::Result::Ok({ctor})\n\
                     }}"
                ));
            }
            Fields::Enum(_) => unreachable!("variant cannot itself be an enum"),
        }
    }
    format!(
        "match __value {{\n\
             ::serde::value::Value::Str(__s) => match __s.as_str() {{\n\
                 {}\n\
                 __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                 ::std::format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
             }},\n\
             ::serde::value::Value::Object(__tagged) if __tagged.len() == 1 => {{\n\
                 let (__tag, __payload) = &__tagged[0];\n\
                 match __tag.as_str() {{\n\
                     {}\n\
                     __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                     ::std::format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                 }}\n\
             }}\n\
             __other => ::std::result::Result::Err(::serde::de::Error::custom(\
             ::std::format!(\"{name}: expected variant, found {{}}\", __other.kind()))),\n\
         }}",
        unit_arms.join("\n"),
        tagged_arms.join("\n")
    )
}
