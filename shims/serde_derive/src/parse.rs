//! A small token-tree walker for derive input: just enough structure
//! recovery (name, generics, fields/variants, `#[serde(...)]` container
//! attributes) to drive the code generators in `lib.rs`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One generic type parameter from the item declaration.
pub struct GenericParam {
    /// The parameter name (`T`).
    pub name: String,
    /// Declared bounds, verbatim (`Copy + Clone`), empty if none.
    pub bounds: String,
}

/// The shape of a struct body or of one enum variant.
pub enum Fields {
    /// `{ a: A, b: B }` — the field names in declaration order.
    Named(Vec<String>),
    /// `(A, B, ...)` — the arity.
    Tuple(usize),
    /// No fields at all.
    Unit,
    /// The item is an enum with these variants (never nested).
    Enum(Vec<Variant>),
}

/// One enum variant.
pub struct Variant {
    /// The variant name.
    pub name: String,
    /// Its payload shape (`Unit`, `Tuple`, or `Named`).
    pub fields: Fields,
}

/// Everything the generators need to know about the derive target.
pub struct Input {
    /// Type name.
    pub name: String,
    /// Generic parameters, in order.
    pub generics: Vec<GenericParam>,
    /// Body shape.
    pub fields: Fields,
    /// `#[serde(try_from = "T")]` payload, if present.
    pub try_from_type: Option<String>,
    /// `#[serde(into = "T")]` payload, if present.
    pub into_type: Option<String>,
}

pub fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    let (try_from_type, into_type) = skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let is_enum = match keyword.as_str() {
        "struct" => false,
        "enum" => true,
        other => panic!("serde_derive: expected struct or enum, found `{other}`"),
    };
    let name = expect_ident(&tokens, &mut pos);
    let generics = parse_generics(&tokens, &mut pos);

    let fields = if is_enum {
        let body = expect_group(&tokens, &mut pos, Delimiter::Brace, "enum body");
        Fields::Enum(parse_variants(body))
    } else {
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            other => panic!("serde_derive: unexpected struct body: {other:?}"),
        }
    };

    Input {
        name,
        generics,
        fields,
        try_from_type,
        into_type,
    }
}

/// Consumes leading `#[...]` attributes, returning any
/// `#[serde(try_from = "...", into = "...")]` payloads found.
fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) -> (Option<String>, Option<String>) {
    let mut try_from = None;
    let mut into = None;
    while let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() != '#' {
            break;
        }
        *pos += 1;
        let TokenTree::Group(attr) = &tokens[*pos] else {
            panic!("serde_derive: `#` not followed by attribute brackets");
        };
        *pos += 1;
        let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
        if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
            (inner.first(), inner.get(1))
        {
            if id.to_string() == "serde" {
                parse_serde_attr(args.stream(), &mut try_from, &mut into);
            }
        }
    }
    (try_from, into)
}

/// Parses `try_from = "f64", into = "f64"` style key/value pairs.
fn parse_serde_attr(stream: TokenStream, try_from: &mut Option<String>, into: &mut Option<String>) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Ident(key) = &tokens[i] {
            let key = key.to_string();
            if matches!(tokens.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                if let Some(TokenTree::Literal(lit)) = tokens.get(i + 2) {
                    let raw = lit.to_string();
                    let ty = raw.trim_matches('"').to_string();
                    match key.as_str() {
                        "try_from" => *try_from = Some(ty),
                        "into" => *into = Some(ty),
                        other => panic!("serde_derive shim: unsupported serde attribute `{other}`"),
                    }
                    i += 3;
                    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                        i += 1;
                    }
                    continue;
                }
            }
            panic!("serde_derive shim: unsupported serde attribute form at `{key}`");
        }
        i += 1;
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        // `pub(crate)` / `pub(in path)` carry a parenthesized payload.
        if matches!(
            tokens.get(*pos),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected identifier, found {other:?}"),
    }
}

fn expect_group(
    tokens: &[TokenTree],
    pos: &mut usize,
    delim: Delimiter,
    what: &str,
) -> TokenStream {
    match tokens.get(*pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == delim => {
            *pos += 1;
            g.stream()
        }
        other => panic!("serde_derive: expected {what}, found {other:?}"),
    }
}

/// Parses `<T, U: Bound + Bound>` if present. Lifetimes are not supported
/// (no derived type in this workspace has them).
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> Vec<GenericParam> {
    let mut params = Vec::new();
    if !matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return params;
    }
    *pos += 1;
    let mut depth = 1usize;
    let mut current_name: Option<String> = None;
    let mut bounds = String::new();
    let mut in_bounds = false;
    while depth > 0 {
        let tok = tokens
            .get(*pos)
            .unwrap_or_else(|| panic!("serde_derive: unterminated generics"));
        *pos += 1;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                if in_bounds {
                    bounds.push('<');
                }
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    if let Some(name) = current_name.take() {
                        params.push(GenericParam {
                            name,
                            bounds: bounds.trim().to_string(),
                        });
                    }
                } else if in_bounds {
                    bounds.push('>');
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                if let Some(name) = current_name.take() {
                    params.push(GenericParam {
                        name,
                        bounds: bounds.trim().to_string(),
                    });
                }
                bounds.clear();
                in_bounds = false;
            }
            TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 && !in_bounds => {
                in_bounds = true;
            }
            other => {
                if in_bounds {
                    push_bound_token(&mut bounds, other);
                } else if current_name.is_none() {
                    if let TokenTree::Ident(id) = other {
                        current_name = Some(id.to_string());
                    } else {
                        panic!("serde_derive: unsupported generic parameter {other:?}");
                    }
                }
            }
        }
    }
    params
}

/// Appends one bound token, inserting a space only between adjacent
/// word-like tokens so paths re-render verbatim (`std::fmt::Debug`, not
/// `std : : fmt : : Debug`, which would not lex).
fn push_bound_token(bounds: &mut String, tok: &TokenTree) {
    let text = tok.to_string();
    let last_is_word = bounds
        .chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let next_is_word = text
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    if last_is_word && next_is_word {
        bounds.push(' ');
    }
    bounds.push_str(&text);
}

/// Extracts field names from `{ a: A, b: B }`, skipping attributes,
/// visibility, and type tokens (tracking `<...>` depth so commas inside
/// generic types don't split fields).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        fields.push(name);
        // Skip `: Type` up to the next top-level comma.
        let mut angle_depth = 0usize;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' && angle_depth > 0 => {
                    angle_depth -= 1;
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple struct/variant body `(A, B, ...)`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0usize;
    let mut trailing_comma = false;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' && angle_depth > 0 => {
                angle_depth -= 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

/// Parses the variants of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip a discriminant (`= expr`) if present, then the separator.
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    pos += 1;
                    break;
                }
                _ => pos += 1,
            }
        }
    }
    variants
}
