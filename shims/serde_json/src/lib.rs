//! Offline stand-in for `serde_json`: renders the `serde` shim's value
//! tree to JSON text and parses it back.
//!
//! Covers the API surface iriscast uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_writer`], [`Result`],
//! [`Error`], and the [`ndjson`] line-framing helpers the assessment
//! service's wire format is built on. Non-finite floats serialize as
//! `null` (as in real serde_json) and `null` deserializes back to
//! `f64::NAN`, so gap-bearing power series round-trip.

#![deny(missing_docs)]

use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io;

pub mod ndjson;
mod parser;
mod writer;

/// Serialization/deserialization failure.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error(e.to_string())
    }
}

/// Alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(writer::write(&value.to_value(), None))
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(writer::write(&value.to_value(), Some(0)))
}

/// Parses a JSON string into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value: Value = parser::parse(s).map_err(Error::new)?;
    T::from_value(&value).map_err(Error::from)
}

/// Serializes `value` as compact JSON into `writer` (no trailing
/// newline, matching real serde_json; the newline-framed form lives in
/// [`ndjson::to_writer`]).
pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes()).map_err(Error::new)
}

#[cfg(test)]
mod tests {
    #[test]
    fn escaped_surrogate_pairs_decode() {
        let s: String = super::from_str(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(s, "\u{1F600}");
        // Unpaired surrogates are rejected, not mangled.
        assert!(super::from_str::<String>(r#""\ud83d""#).is_err());
        assert!(super::from_str::<String>(r#""\ud83dA""#).is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\n\ttab \"quoted\" back\\slash \u{1F980}".to_string();
        let json = super::to_string(&original).unwrap();
        let back: String = super::from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn missing_optional_field_is_none() {
        // Absent keys deserialize Option fields to None (serde semantics);
        // absent non-optional keys stay an error.
        let fields = vec![("present".to_string(), serde::value::Value::Int(7))];
        let got: Option<i64> = serde::de::field(&fields, "T", "absent").unwrap();
        assert_eq!(got, None);
        assert!(serde::de::field::<i64>(&fields, "T", "absent").is_err());
        let present: Option<i64> = serde::de::field(&fields, "T", "present").unwrap();
        assert_eq!(present, Some(7));
    }

    #[test]
    fn numbers_round_trip_exactly() {
        let json = super::to_string(&(i64::MAX, u64::MAX, 0.1f64, -2.5e-300f64)).unwrap();
        let (a, b, c, d): (i64, u64, f64, f64) = super::from_str(&json).unwrap();
        assert_eq!(a, i64::MAX);
        assert_eq!(b, u64::MAX);
        assert_eq!(c, 0.1);
        assert_eq!(d, -2.5e-300);
    }

    #[test]
    fn derive_handles_bounded_generics_and_enums() {
        // The declared path bounds (`std::fmt::Debug`) must re-render as
        // lexable Rust in the generated impl header.
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Wrapper<T: std::fmt::Debug + Clone> {
            inner: T,
            tag: Option<String>,
        }
        #[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
        enum Payload {
            Empty,
            One(f64),
            Pair { a: i64, b: String },
        }

        for payload in [
            Payload::Empty,
            Payload::One(2.5),
            Payload::Pair {
                a: -3,
                b: "x".into(),
            },
        ] {
            let w = Wrapper {
                inner: payload.clone(),
                tag: None,
            };
            let json = super::to_string(&w).unwrap();
            let back: Wrapper<Payload> = super::from_str(&json).unwrap();
            assert_eq!(back.inner, payload);
        }
        // A missing Option field deserializes to None end-to-end.
        let partial: Wrapper<Payload> = super::from_str(r#"{"inner":"Empty"}"#).unwrap();
        assert_eq!(partial.tag, None);
    }

    #[test]
    fn nan_serializes_as_null_and_returns_as_nan() {
        let json = super::to_string(&vec![1.0f64, f64::NAN]).unwrap();
        assert_eq!(json, "[1.0,null]");
        let back: Vec<f64> = super::from_str(&json).unwrap();
        assert_eq!(back[0], 1.0);
        assert!(back[1].is_nan());
    }
}
