//! Newline-delimited JSON (NDJSON) line framing.
//!
//! The assessment service's wire format is one JSON document per line:
//! compact rendering (a shim invariant worth naming — [`super::to_string`]
//! never emits raw newlines, and string escapes turn embedded `\n` into
//! `\\n`), terminated by `\n`. [`to_writer`] frames one value;
//! [`from_str`] walks a buffer of frames, yielding one parse result per
//! non-empty line so a corrupt line surfaces as *that line's* error
//! without poisoning the rest of the stream.

use crate::{Error, Result};
use serde::{Deserialize, Serialize};
use std::io;
use std::marker::PhantomData;

/// Serializes `value` as one NDJSON frame: compact JSON plus a trailing
/// `\n`.
pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let mut text = crate::to_string(value)?;
    debug_assert!(
        !text.contains('\n'),
        "compact JSON must never span lines — the framing depends on it"
    );
    text.push('\n');
    writer.write_all(text.as_bytes()).map_err(Error::new)
}

/// Iterator over the frames of an NDJSON buffer: one `Result<T>` per
/// non-empty line, in order. See [`from_str`].
pub struct Lines<'a, T> {
    lines: std::str::Lines<'a>,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Deserialize> Iterator for Lines<'_, T> {
    type Item = Result<T>;

    fn next(&mut self) -> Option<Self::Item> {
        for line in self.lines.by_ref() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                // Blank lines (including the virtual one a trailing `\n`
                // leaves) are framing slack, not documents.
                continue;
            }
            return Some(crate::from_str(trimmed));
        }
        None
    }
}

/// Parses an NDJSON buffer into per-line values: each non-empty line is
/// deserialized independently, so one malformed frame yields one `Err`
/// and the iterator carries on with the next line.
pub fn from_str<T: Deserialize>(s: &str) -> Lines<'_, T> {
    Lines {
        lines: s.lines(),
        _marker: PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Frame {
        site: String,
        seq: u64,
        kwh: f64,
    }

    fn frames() -> Vec<Frame> {
        vec![
            Frame {
                site: "QMUL".into(),
                seq: 0,
                kwh: 812.5,
            },
            Frame {
                site: "with \"quotes\"\nand newline".into(),
                seq: 1,
                kwh: f64::NAN, // serializes as null, returns as NaN
            },
            Frame {
                site: "DUR".into(),
                seq: 2,
                kwh: 0.125,
            },
        ]
    }

    #[test]
    fn ndjson_round_trips_frame_for_frame() {
        let mut buf = Vec::new();
        for f in frames() {
            super::to_writer(&mut buf, &f).unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        // Exactly one frame per line, each newline-terminated — embedded
        // newlines in string fields must have been escaped away.
        assert_eq!(text.matches('\n').count(), 3);
        assert!(text.ends_with('\n'));

        let back: Vec<Frame> = super::from_str(&text).map(|r| r.unwrap()).collect();
        assert_eq!(back.len(), 3);
        let original = frames();
        assert_eq!(back[0], original[0]);
        assert_eq!(back[2], original[2]);
        assert_eq!(back[1].site, original[1].site);
        assert!(back[1].kwh.is_nan());
    }

    #[test]
    fn blank_lines_are_skipped_and_bad_frames_fail_alone() {
        let text = "\n{\"site\":\"A\",\"seq\":0,\"kwh\":1.0}\n\n  \nnot json\n{\"site\":\"B\",\"seq\":1,\"kwh\":2.0}\n";
        let parsed: Vec<super::super::Result<Frame>> = super::from_str(text).collect();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].as_ref().unwrap().site, "A");
        assert!(parsed[1].is_err());
        assert_eq!(parsed[2].as_ref().unwrap().site, "B");
    }

    #[test]
    fn unframed_to_writer_matches_to_string() {
        let f = &frames()[0];
        let mut buf = Vec::new();
        crate::to_writer(&mut buf, f).unwrap();
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            crate::to_string(f).unwrap()
        );
    }
}
