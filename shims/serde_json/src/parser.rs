//! A recursive-descent JSON parser producing the shared value tree.

use serde::value::Value;

pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected character at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let mut code = self.hex_escape(self.pos + 1)?;
                            self.pos += 4;
                            // A high surrogate must pair with a following
                            // `\uDC00..\uDFFF` low surrogate.
                            if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos + 1..self.pos + 3)
                                    != Some(br"\u".as_slice())
                                {
                                    return Err("unpaired surrogate".to_string());
                                }
                                let low = self.hex_escape(self.pos + 3)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err("unpaired surrogate".to_string());
                                }
                                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                self.pos += 6;
                            }
                            out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                        }
                        _ => return Err("invalid escape".to_string()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8 in string")?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape starting at `at`.
    fn hex_escape(&self, at: usize) -> Result<u32, String> {
        let hex = self.bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
        let hex = std::str::from_utf8(hex).map_err(|_| "invalid \\u escape")?;
        u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape".to_string())
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "invalid number")?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("invalid number `{text}`"))
    }
}
