//! JSON text rendering for the shared value tree.

use serde::value::Value;

/// Renders `value` to JSON. `indent = None` is compact; `Some(level)`
/// pretty-prints with two spaces per level.
pub fn write(value: &Value, indent: Option<usize>) -> String {
    let mut out = String::new();
    write_into(&mut out, value, indent);
    out
}

fn pad(out: &mut String, level: usize) {
    out.push('\n');
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_into(out: &mut String, value: &Value, indent: Option<usize>) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a trailing `.0` and is shortest-round-trip.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    pad(out, level + 1);
                }
                write_into(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                pad(out, level);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    pad(out, level + 1);
                }
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_into(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                pad(out, level);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
