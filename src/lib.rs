//! # iriscast — total environmental impact assessment for computing infrastructures
//!
//! A production-quality Rust implementation of the IRISCAST methodology
//! (Jackson et al., *Evaluating Total Environmental Impact for a Computing
//! Infrastructure*, SC 2023 Workshops): assess the full climate impact of
//! a digital research infrastructure as
//!
//! > **total = active + embodied**
//!
//! where *active* carbon is measured energy × grid carbon intensity ×
//! facility overheads, and *embodied* carbon is manufacturing emissions
//! amortised over hardware lifetime — each evaluated as low/medium/high
//! scenario ranges.
//!
//! This facade re-exports the whole toolkit:
//!
//! | Module | Crate | Provides |
//! |---|---|---|
//! | [`units`] | `iriscast-units` | dimensional types: [`units::Energy`], [`units::Power`], [`units::CarbonMass`], [`units::CarbonIntensity`], [`units::Pue`], simulation time |
//! | [`inventory`] | `iriscast-inventory` | hardware catalog + component-level embodied carbon, incl. the IRIS dataset |
//! | [`grid`] | `iriscast-grid` | GB grid generation/carbon-intensity simulator (Figure 1's substrate) |
//! | [`telemetry`] | `iriscast-telemetry` | facility/PDU/IPMI/Turbostat measurement stack (Table 2's substrate) |
//! | [`workload`] | `iriscast-workload` | job generator + FCFS/backfill/carbon-aware schedulers |
//! | [`model`] | `iriscast-model` | the carbon model: assessments, sweeps, reports, paper constants |
//!
//! ## Quickstart
//!
//! ```
//! use iriscast::prelude::*;
//!
//! // Energy measured for a 24 h window, paper parameters for everything
//! // else: the full assessment in two lines.
//! let energy = Energy::from_kilowatt_hours(19_380.0);
//! let report = SnapshotAssessment::run(energy, &AssessmentParams::paper());
//! let total = report.assessment.total();
//! assert!(total.lo.kilograms() > 1_000.0);
//! assert!(total.hi.kilograms() < 12_000.0);
//! ```
//!
//! ## Reproducing the paper
//!
//! Run `cargo run -p iriscast-bench --bin repro` to regenerate every table
//! and figure with paper-vs-measured columns, or see `examples/` for
//! guided scenarios.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub use iriscast_grid as grid;
pub use iriscast_inventory as inventory;
pub use iriscast_model as model;
pub use iriscast_telemetry as telemetry;
pub use iriscast_units as units;
pub use iriscast_workload as workload;

/// The most commonly used types across the toolkit, in one import.
pub mod prelude {
    pub use iriscast_grid::{GridScenario, IntensitySeries};
    pub use iriscast_inventory::{EmbodiedFactors, Fleet, NodeBuilder, NodeRole, NodeSpec};
    pub use iriscast_model::assessment::{AssessmentParams, SnapshotAssessment};
    pub use iriscast_model::model::CarbonAssessment;
    pub use iriscast_telemetry::{
        MeterKind, NodePowerModel, SiteCollector, SiteTelemetryConfig, UtilizationSource,
    };
    pub use iriscast_units::prelude::*;
    pub use iriscast_workload::{ClusterSim, Job, WorkloadConfig};
}
