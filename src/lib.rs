//! # iriscast — total environmental impact assessment for computing infrastructures
//!
//! A production-quality Rust implementation of the IRISCAST methodology
//! (Jackson et al., *Evaluating Total Environmental Impact for a Computing
//! Infrastructure*, SC 2023 Workshops): assess the full climate impact of
//! a digital research infrastructure as
//!
//! > **total = active + embodied**
//!
//! where *active* carbon is measured energy × grid carbon intensity ×
//! facility overheads, and *embodied* carbon is manufacturing emissions
//! amortised over hardware lifetime — each evaluated over a **scenario
//! space**: the cartesian product of carbon-intensity, PUE,
//! embodied-carbon and lifespan axes of any length. The paper's published
//! low/medium/high tables are the 3-sample special case. Energy can be a
//! scalar ([`model::engine::Assessment`]) or a half-hourly series
//! convolved against per-interval grid intensity
//! ([`model::time_resolved::TimeResolvedAssessment`]), evaluated
//! materialised, streamed (bounded memory for >10M-point sweeps),
//! chunked, or in parallel — all bit-identical.
//!
//! The crate graph, the telemetry → grid → engine → report data flow,
//! the scalar-vs-streaming evaluation paths, and the offline-shim policy
//! are documented end to end in `ARCHITECTURE.md` at the repository
//! root.
//!
//! This facade re-exports the whole toolkit:
//!
//! | Module | Crate | Provides |
//! |---|---|---|
//! | [`units`] | `iriscast-units` | dimensional types: [`units::Energy`], [`units::Power`], [`units::CarbonMass`], [`units::CarbonIntensity`], [`units::Pue`], simulation time, axis sampling |
//! | [`inventory`] | `iriscast-inventory` | hardware catalog + component-level embodied carbon, incl. the IRIS dataset |
//! | [`grid`] | `iriscast-grid` | GB grid generation/carbon-intensity simulator (Figure 1's substrate) |
//! | [`telemetry`] | `iriscast-telemetry` | facility/PDU/IPMI/Turbostat measurement stack (Table 2's substrate) |
//! | [`workload`] | `iriscast-workload` | job generator + FCFS/backfill/carbon-aware schedulers |
//! | [`sim`] | `iriscast-sim` | deterministic discrete-event engine co-simulating workload × grid × telemetry |
//! | [`model`] | `iriscast-model` | the carbon model: the scenario-space engine, table adapters, reports, paper constants |
//! | [`serve`] | `iriscast-serve` | live assessment service: incremental snapshot ingest, warm queries, tenant attribution, NDJSON wire |
//!
//! ## Quickstart
//!
//! Build an assessment with [`model::engine::Assessment::builder`]: an
//! energy source, one axis per model input, a fleet size. Evaluate one
//! point, the whole space, or the whole space across threads.
//!
//! ```
//! use iriscast::prelude::*;
//!
//! // Energy measured for a 24 h window; every other input swept as an
//! // axis. 6 CI × 4 PUE × 5 embodied × 5 lifespan = 600 scenarios.
//! let assessment = Assessment::builder()
//!     .energy(Energy::from_kilowatt_hours(19_380.0))
//!     .ci_grams_per_kwh(&[50.0, 100.0, 150.0, 200.0, 250.0, 300.0])
//!     .pue_values(&[1.1, 1.3, 1.5, 1.6])
//!     .embodied_linspace(
//!         Bounds::new(
//!             CarbonMass::from_kilograms(400.0),
//!             CarbonMass::from_kilograms(1_100.0),
//!         ),
//!         5,
//!     )
//!     .lifespan_linspace(3.0, 7.0, 5)
//!     .servers(2_398)
//!     .build()
//!     .expect("axes are non-empty and valid");
//!
//! let results = assessment.evaluate_space();
//! assert_eq!(results.len(), 600);
//! let envelope = results.envelope();
//! assert!(envelope.total.lo < envelope.total.hi);
//! let p95 = results.percentile(0.95).unwrap();
//! assert!(p95 <= envelope.total.hi);
//! ```
//!
//! The paper-shaped one-call pipeline is still available — it is a thin
//! adapter over the same engine, bit-identical to the published tables:
//!
//! ```
//! use iriscast::prelude::*;
//!
//! let report = SnapshotAssessment::run(
//!     Energy::from_kilowatt_hours(19_380.0),
//!     &AssessmentParams::paper(),
//! );
//! let total = report.assessment.total();
//! assert!(total.lo.kilograms() > 1_000.0);
//! assert!(total.hi.kilograms() < 12_000.0);
//! ```
//!
//! ## Reproducing the paper
//!
//! Run `cargo run -p iriscast-bench --bin repro` to regenerate every table
//! and figure with paper-vs-measured columns, or see `examples/` for
//! guided scenarios (`scenario_space.rs` sweeps a 10,000+-point space;
//! `day_sweep.rs` convolves Table 2 telemetry against every Figure 1 grid
//! day and streams a >10M-point time-resolved space in bounded memory).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub use iriscast_grid as grid;
pub use iriscast_inventory as inventory;
pub use iriscast_model as model;
pub use iriscast_serve as serve;
pub use iriscast_sim as sim;
pub use iriscast_telemetry as telemetry;
pub use iriscast_units as units;
pub use iriscast_workload as workload;

/// The most commonly used types across the toolkit, in one import.
pub mod prelude {
    pub use iriscast_grid::{GridScenario, IntensitySeries};
    pub use iriscast_inventory::{
        EmbodiedFactors, FederatedFleet, Fleet, NodeBuilder, NodeRole, NodeSpec, Region,
    };
    pub use iriscast_model::assessment::{AssessmentParams, SnapshotAssessment};
    pub use iriscast_model::engine::{
        Assessment, AssessmentBuilder, Envelope, Marginal, PointOutcome, PointResult, SpaceResults,
        TotalsSummary,
    };
    pub use iriscast_model::federation::{FleetRollup, FleetScenario, FleetSite, RegionRollup};
    pub use iriscast_model::model::CarbonAssessment;
    pub use iriscast_model::space::{AxisId, ScenarioAxis, ScenarioPoint, ScenarioSpace};
    pub use iriscast_model::time_resolved::{
        CarbonProfile, TimeResolvedAssessment, TimeResolvedBuilder,
    };
    pub use iriscast_model::{Error as ModelError, Result as ModelResult};
    pub use iriscast_serve::{
        AssessmentService, FleetFederator, QueryReply, QueryRequest, RegionHandle, ServeError,
        SiteModel, SnapshotRecord, SocketClient, SocketServer,
    };
    pub use iriscast_sim::{
        Component, Ctx, CurtailmentScenario, DeferralScenario, DemandResponseScenario,
        DropoutScenario, Engine, EngineBuilder, FaultInjector, ForecastScenario, ScenarioRun,
        SnapshotSampler, TelemetryDelta,
    };
    pub use iriscast_telemetry::timeseries::{EnergySeries, GapPolicy, PowerSeries};
    pub use iriscast_telemetry::{
        CollectScratch, MeterKind, NodePowerModel, SiteCollector, SiteTelemetryConfig,
        TelemetryError, UtilizationSource,
    };
    pub use iriscast_units::prelude::*;
    pub use iriscast_workload::{ClusterSim, Job, WorkloadConfig};
}
