//! Golden-snapshot guard for the paper assessment.
//!
//! `paper_reproduction.rs` checks the pipeline against the *published*
//! (rounded) numbers with loose tolerances; this suite pins the *exact
//! values the code computes today*, so any refactor that shifts a result
//! — even within the paper's rounding — fails loudly instead of drifting
//! silently. If a change is intentional, re-derive the constants below
//! (print the fields of `SnapshotAssessment::run(...)`) and update them
//! in the same commit, explaining why.

use iriscast::prelude::*;

/// Absolute tolerance in kg for fleet-scale numbers: generous enough for
/// cross-platform float noise (values are computed in a handful of
/// multiplies), far below the ~1 kg resolution the paper reports.
const TOL_KG: f64 = 0.01;

/// Tolerance for per-server daily amortisation (values of order 1 kg).
const TOL_DAILY_KG: f64 = 1e-6;

fn paper_assessment() -> SnapshotAssessment {
    // The paper's effective active energy: 18,760 kWh measured, adjusted
    // for instrument coverage (§5) to 19,380 kWh.
    SnapshotAssessment::run(
        Energy::from_kilowatt_hours(19_380.0),
        &AssessmentParams::paper(),
    )
}

/// Table 3: the CI × PUE active-carbon grid, all nine cells.
#[test]
fn table3_grid_cells_are_pinned() {
    let a = paper_assessment();
    // Rows: CI low/medium/high (50/175/300 g/kWh); columns: PUE
    // low/medium/high (1.1/1.3/1.6). kgCO2e.
    let golden: [[f64; 3]; 3] = [
        [1_065.9, 1_259.7, 1_550.4],
        [3_730.65, 4_408.95, 5_426.4],
        [6_395.4, 7_558.2, 9_302.4],
    ];
    for (i, row) in golden.iter().enumerate() {
        for (j, &expect) in row.iter().enumerate() {
            let got = a.active.cells[i][j].kilograms();
            assert!(
                (got - expect).abs() < TOL_KG,
                "table 3 cell [{i}][{j}]: got {got}, golden {expect}"
            );
        }
    }
    let env = a.active.envelope();
    assert!((env.lo.kilograms() - 1_065.9).abs() < TOL_KG);
    assert!((env.hi.kilograms() - 9_302.4).abs() < TOL_KG);
}

/// Table 4: the embodied amortisation sweep, every row, both brackets.
#[test]
fn table4_embodied_sweep_is_pinned() {
    let a = paper_assessment();
    // (lifespan years, daily lo/hi per server, fleet snapshot lo/hi),
    // for the 400 / 1,100 kg-per-server brackets over 2,398 servers.
    let golden: [(u32, f64, f64, f64, f64); 5] = [
        (3, 0.365_297, 1.004_566, 875.981_735, 2_408.949_772),
        (4, 0.273_973, 0.753_425, 656.986_301, 1_806.712_329),
        (5, 0.219_178, 0.602_740, 525.589_041, 1_445.369_863),
        (6, 0.182_648, 0.502_283, 437.990_868, 1_204.474_886),
        (7, 0.156_556, 0.430_528, 375.420_744, 1_032.407_045),
    ];
    assert_eq!(a.embodied.rows.len(), golden.len());
    for (row, (years, d_lo, d_hi, f_lo, f_hi)) in a.embodied.rows.iter().zip(golden) {
        assert_eq!(row.lifespan_years, years);
        assert!(
            (row.per_server_daily.lo.kilograms() - d_lo).abs() < TOL_DAILY_KG,
            "daily lo, {years}y"
        );
        assert!(
            (row.per_server_daily.hi.kilograms() - d_hi).abs() < TOL_DAILY_KG,
            "daily hi, {years}y"
        );
        assert!(
            (row.fleet_snapshot.lo.kilograms() - f_lo).abs() < TOL_KG,
            "fleet lo, {years}y"
        );
        assert!(
            (row.fleet_snapshot.hi.kilograms() - f_hi).abs() < TOL_KG,
            "fleet hi, {years}y"
        );
    }
    let env = a.embodied.envelope();
    assert!((env.lo.kilograms() - 375.420_744).abs() < TOL_KG);
    assert!((env.hi.kilograms() - 2_408.949_772).abs() < TOL_KG);
}

/// The §6 headline: total = active + embodied, low and high scenarios.
#[test]
fn summary_totals_are_pinned() {
    let a = paper_assessment();
    let total = a.assessment.total();
    assert!(
        (total.lo.kilograms() - 1_441.320_744).abs() < TOL_KG,
        "total lo = {}",
        total.lo.kilograms()
    );
    assert!(
        (total.hi.kilograms() - 11_711.349_772).abs() < TOL_KG,
        "total hi = {}",
        total.hi.kilograms()
    );
    let share = a.assessment.embodied_share();
    assert!(
        (share.lo - 0.205_694).abs() < 1e-5,
        "share lo = {}",
        share.lo
    );
    assert!(
        (share.hi - 0.260_470).abs() < 1e-5,
        "share hi = {}",
        share.hi
    );
}
