//! Integration: regenerate every published table and check it against the
//! paper, exercising the full crate stack (inventory → telemetry → grid →
//! model).

use iriscast::grid::scenario::uk_november_2022;
use iriscast::model::iris::IrisScenario;
use iriscast::model::{paper, AssessmentParams, SnapshotAssessment};
use iriscast::prelude::*;
use iriscast::units::SimDuration;

/// Table 1: the encoded inventory matches the published hardware summary.
#[test]
fn table1_inventory_matches() {
    let fleet = iriscast::inventory::iris::iris_fleet();
    let expect: [(&str, u32, u32); 6] = [
        ("QMUL", 118, 0),
        ("CAM", 60, 0),
        ("DUR", 808, 64),
        ("STFC-CLOUD", 651, 105),
        ("STFC-SCARF", 699, 0),
        ("IMP", 241, 0),
    ];
    for (code, compute, storage) in expect {
        let site = fleet.site(code).unwrap();
        let listed_compute: u32 = site
            .groups
            .iter()
            .filter(|g| g.listed_in_summary && g.spec.role() == NodeRole::Compute)
            .map(|g| g.count)
            .sum();
        let listed_storage: u32 = site
            .groups
            .iter()
            .filter(|g| g.listed_in_summary && g.spec.role() == NodeRole::Storage)
            .map(|g| g.count)
            .sum();
        assert_eq!(listed_compute, compute, "{code} compute");
        assert_eq!(listed_storage, storage, "{code} storage");
    }
    assert_eq!(fleet.monitored_nodes(), 2_462);
    assert_eq!(fleet.monitored_servers(), paper::AMORTISATION_FLEET_SERVERS);
}

/// Table 2: the calibrated telemetry simulation lands on every published
/// cell within 2%, with the right cells missing.
#[test]
fn table2_simulation_matches() {
    let scenario = IrisScenario::paper_snapshot(7).with_sample_step(SimDuration::from_secs(300));
    let result = scenario.simulate(4);
    for (row, published) in result.rows.iter().zip(paper::TABLE2_ROWS.iter()) {
        for (got, want, what) in [
            (row.energies.facility, published.facility_kwh, "facility"),
            (row.energies.pdu, published.pdu_kwh, "pdu"),
            (row.energies.ipmi, published.ipmi_kwh, "ipmi"),
            (row.energies.turbostat, published.turbostat_kwh, "turbostat"),
        ] {
            match (got, want) {
                (Some(g), Some(w)) => {
                    let rel = (g.kilowatt_hours() - w).abs() / w;
                    assert!(rel < 0.02, "{}/{what}: {rel:.3} off", row.site);
                }
                (None, None) => {}
                _ => panic!("{}/{what}: cell presence mismatch", row.site),
            }
        }
    }
    let total = result.total().kilowatt_hours();
    assert!((total - paper::TABLE2_TOTAL_KWH).abs() / paper::TABLE2_TOTAL_KWH < 0.02);
}

/// Figure 1: the grid scenario shows the month's structure the references
/// were read from.
#[test]
fn figure1_grid_shape() {
    let sim = uk_november_2022(3).simulate();
    let series = sim.intensity();
    let daily = series.daily_means();
    assert_eq!(daily.len(), 30);
    // The figure's visual: mean in the high-100s, busy swings.
    let mean = series.mean().grams_per_kwh();
    assert!((120.0..=240.0).contains(&mean), "monthly mean {mean}");
    let refs = series.reference_values();
    assert!(refs.low.grams_per_kwh() < 120.0);
    assert!(refs.high.grams_per_kwh() > 230.0);
    // The paper's 50/175/300 are within the plausible reading band of our
    // percentiles across seeds; check ordering and coverage here.
    assert!(refs.low < refs.mid && refs.mid < refs.high);
}

/// Tables 3 & 4 and the §6 summary: exact from published inputs.
#[test]
fn tables3_4_and_summary_exact() {
    let a = SnapshotAssessment::paper_exact();
    for i in 0..3 {
        for j in 0..3 {
            assert!(
                (a.active.cells[i][j].kilograms() - paper::TABLE3_WITH_FACILITIES_KG[i][j]).abs()
                    < 1.5,
                "table 3 cell [{i}][{j}]"
            );
        }
    }
    for (row, (years, _, _, f400, f1100)) in a.embodied.rows.iter().zip(paper::TABLE4_ROWS) {
        assert_eq!(row.lifespan_years, years);
        assert!((row.fleet_snapshot.lo.kilograms() - f400).abs() < 1.0);
        assert!((row.fleet_snapshot.hi.kilograms() - f1100).abs() < 1.0);
    }
    let total = a.assessment.total();
    assert!((total.lo.kilograms() - 1_441.0).abs() < 2.0);
    assert!((total.hi.kilograms() - 11_711.0).abs() < 2.0);
}

/// The end-to-end chain: simulated Table 2 energy through the assessment
/// pipeline preserves the paper's qualitative conclusions.
#[test]
fn end_to_end_conclusions_hold() {
    let scenario = IrisScenario::paper_snapshot(99).with_sample_step(SimDuration::from_secs(600));
    let result = scenario.simulate(4);
    let a = SnapshotAssessment::run(result.total(), &AssessmentParams::paper());

    // Conclusion 1: embodied is the smaller component in most scenarios.
    let share = a.assessment.embodied_share();
    assert!(share.hi < 0.5, "embodied share {share}");

    // Conclusion 2: the snapshot is worth "1 to 4" 24-hour flights
    // (extremes land just outside, as in the paper's own rounding).
    assert!(a.equivalents.lo.flight_days < 1.5);
    assert!(a.equivalents.hi.flight_days > 3.5);

    // Conclusion 3: active dominates ⇒ the active range is wider than the
    // embodied range.
    let active_span = a.assessment.active.hi - a.assessment.active.lo;
    let embodied_span = a.assessment.embodied.hi - a.assessment.embodied.lo;
    assert!(active_span > embodied_span);
}
