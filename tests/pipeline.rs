//! Integration: cross-crate pipelines, determinism, and failure injection.

use iriscast::grid::scenario::uk_november_2022;
use iriscast::model::active::active_carbon_series;
use iriscast::prelude::*;
use iriscast::telemetry::{
    GapPolicy, MeterErrorModel, NodeGroupTelemetry, PowerMeter, SyntheticUtilization,
};
use iriscast::units::{SimDuration, Timestamp};
use iriscast::workload::metrics::outcome_carbon;
use iriscast::workload::scheduler::{CarbonAwareScheduler, EasyBackfillScheduler};
use iriscast::workload::{generate, offered_load};

fn demo_config(seed: u64) -> SiteTelemetryConfig {
    let mut cfg = SiteTelemetryConfig::new(
        "PIPE",
        vec![NodeGroupTelemetry {
            label: "compute".into(),
            count: 64,
            power_model: NodePowerModel::linear(Power::from_watts(120.0), Power::from_watts(550.0)),
        }],
        seed,
    );
    cfg.sample_step = SimDuration::from_secs(300);
    cfg
}

/// Workload → trace → telemetry → grid → carbon: the full loop closes and
/// the two independent carbon accountings (telemetry-side and
/// scheduler-side) agree.
#[test]
fn workload_drives_telemetry_consistently() {
    let day = Period::snapshot_24h();
    let jobs = generate(&WorkloadConfig::batch_hpc(), day, 5);
    let sim = ClusterSim::new(64);
    let mut policy = EasyBackfillScheduler;
    let outcome = sim.run(jobs, &mut policy, day);
    assert!(outcome.occupancy() > 0.3, "workload too light to be a test");

    // Route the schedule into the telemetry collector as a trace.
    let trace = outcome.to_trace(SimDuration::from_secs(300));
    let collector = SiteCollector::new(demo_config(1));
    let result = collector.collect(day, &trace, 4).unwrap();

    // The collector's true energy must equal the analytic energy of the
    // schedule: idle floor + per-job marginal energy, clipped to the
    // window (backfilled jobs may run past midnight; the telemetry stops
    // at the window edge).
    let model = NodePowerModel::linear(Power::from_watts(120.0), Power::from_watts(550.0));
    let idle = model.wall_power(0.0) * 64.0 * day.duration();
    let marginal: Energy = outcome
        .scheduled
        .iter()
        .map(|s| {
            let span = Period::new(s.start, s.end);
            iriscast::workload::metrics::job_energy(s, &model, true) * span.overlap_fraction(&day)
        })
        .sum();
    let expected = idle + marginal;
    let got = result.true_energy();
    let rel = (got.kilowatt_hours() - expected.kilowatt_hours()).abs() / expected.kilowatt_hours();
    // Trace discretisation (300 s slots vs exact intervals) costs a little.
    assert!(
        rel < 0.02,
        "telemetry {got} vs analytic {expected} ({rel:.4})"
    );
}

/// Active carbon via the time-aligned series equals scalar × mean for an
/// uncorrelated load, and the whole chain is deterministic.
#[test]
fn energy_series_times_grid_is_stable() {
    let day = Period::snapshot_24h();
    let collector = SiteCollector::new(demo_config(9));
    let util = SyntheticUtilization::calibrated(0.5, 4);
    let result = collector.collect(day, &util, 2).unwrap();
    let energy_series = result
        .series(MeterKind::Pdu)
        .unwrap()
        .to_energy_series(SimDuration::SETTLEMENT_PERIOD, GapPolicy::HoldLast);

    let grid = uk_november_2022(1).simulate();
    let day_grid = grid.intensity().slice(day).unwrap();
    let aligned = active_carbon_series(&energy_series, &day_grid);
    let scalar = energy_series.total() * day_grid.mean();
    // The demo load is only weakly correlated with the within-day grid
    // swings; the aligned figure differs from the scalar one by a bounded
    // factor. (Against the *monthly* mean the gap can exceed 50% — which
    // is exactly why the snapshot day matters.)
    let ratio = aligned / scalar;
    assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    let month_scalar = energy_series.total() * grid.intensity().mean();
    assert!(
        (aligned / month_scalar - 1.0).abs() < 0.8,
        "sanity: month-mean scalar is the wrong baseline but not absurd"
    );

    // Determinism end to end.
    let again = SiteCollector::new(demo_config(9))
        .collect(day, &util, 8)
        .unwrap();
    assert_eq!(result, again);
}

/// Meter dropout and gap policies: a lossy instrument still yields a
/// usable energy figure.
#[test]
fn dropout_resilience() {
    let day = Period::snapshot_24h();
    let mut cfg = demo_config(21);
    cfg.sample_step = SimDuration::from_secs(120);
    let collector = SiteCollector::new(cfg);
    let util = FlatUtil(0.6);
    let clean = collector.collect(day, &util, 2).unwrap();

    // A badly degraded IPMI estate: 30% dropout per sample.
    let degraded = MeterErrorModel {
        dropout: 0.3,
        ..PowerMeter::standard(MeterKind::Ipmi).error
    };
    // Dropout is bridged by per-node hold-last inside the collector; even
    // heavy loss must not collapse the energy figure. We emulate the
    // degradation by zeroing a random 30% of the clean series and
    // hold-filling — the same mechanism the collector applies.
    let mut series = clean.series(MeterKind::Ipmi).unwrap().clone();
    let n = series.len();
    for i in 0..n {
        if (i * 2_654_435_761) % 10 < 3 {
            series.watts_mut()[i] = f64::NAN;
        }
    }
    assert!(series.valid_fraction() < 0.8);
    let healed = series.integrate(GapPolicy::HoldLast);
    let clean_e = clean.energy(MeterKind::Ipmi).unwrap();
    let rel = (healed.kilowatt_hours() - clean_e.kilowatt_hours()).abs() / clean_e.kilowatt_hours();
    assert!(rel < 0.02, "healed energy {rel:.3} off clean");
    let _ = degraded; // the error model itself is unit-tested in-crate
}

/// Carbon-aware scheduling beats plain backfill on carbon for a workload
/// with slack, across several seeds.
#[test]
fn carbon_aware_saves_carbon() {
    let week = Period::starting_at(Timestamp::EPOCH, SimDuration::from_days(7));
    let grid = uk_november_2022(17).simulate();
    let series = grid.intensity().slice(week).unwrap();
    let model = NodePowerModel::linear(Power::from_watts(120.0), Power::from_watts(550.0));
    let cfg = WorkloadConfig {
        deferrable_fraction: 0.6,
        mean_interarrival: SimDuration::from_secs(300),
        ..WorkloadConfig::batch_hpc()
    };
    let mut wins = 0;
    for seed in 0..3 {
        let jobs = generate(&cfg, week, seed);
        assert!(
            offered_load(&jobs, 64, week) < 1.0,
            "keep the test un-saturated"
        );
        let sim = ClusterSim::new(64);
        let base = sim.run_with_intensity(
            jobs.clone(),
            &mut EasyBackfillScheduler,
            week,
            Some(&series),
        );
        let mut aware_policy =
            CarbonAwareScheduler::new(EasyBackfillScheduler, series.percentile(0.4));
        let aware = sim.run_with_intensity(jobs, &mut aware_policy, week, Some(&series));
        let c_base = outcome_carbon(&base, &model, &series);
        let c_aware = outcome_carbon(&aware, &model, &series);
        if c_aware < c_base {
            wins += 1;
        }
    }
    assert!(wins >= 2, "carbon-aware won only {wins}/3 seeds");
}

/// Acting on a *forecast* (the operationally honest setting) still saves
/// carbon measured against the actuals.
#[test]
fn forecast_driven_scheduling_still_saves() {
    use iriscast::grid::DayAheadForecaster;
    let week = Period::starting_at(Timestamp::EPOCH, SimDuration::from_days(7));
    // Forecast needs a day of history: simulate 8 days, act on days 1–8.
    let grid = uk_november_2022(23).simulate();
    let actual = grid
        .intensity()
        .slice(Period::new(Timestamp::EPOCH, Timestamp::from_days(8)))
        .unwrap();
    let forecast = DayAheadForecaster::gb_default().forecast_series(&actual);
    let act_week = actual
        .slice(Period::new(
            Timestamp::from_days(1),
            Timestamp::from_days(8),
        ))
        .unwrap();
    let fct_week = forecast
        .slice(Period::new(
            Timestamp::from_days(1),
            Timestamp::from_days(8),
        ))
        .unwrap();

    let cfg = WorkloadConfig {
        deferrable_fraction: 0.6,
        mean_interarrival: SimDuration::from_secs(300),
        ..WorkloadConfig::batch_hpc()
    };
    let play_week = Period::new(Timestamp::from_days(1), Timestamp::from_days(8));
    let jobs = generate(&cfg, play_week, 31);
    let model = NodePowerModel::linear(Power::from_watts(120.0), Power::from_watts(550.0));
    let sim = ClusterSim::new(64);

    let base = sim.run_with_intensity(
        jobs.clone(),
        &mut EasyBackfillScheduler,
        play_week,
        Some(&act_week),
    );
    // The carbon-aware policy *sees the forecast*, but is *scored on
    // actuals*.
    let mut aware = CarbonAwareScheduler::new(EasyBackfillScheduler, fct_week.percentile(0.4));
    let aware_outcome = sim.run_with_intensity(jobs, &mut aware, play_week, Some(&fct_week));

    let c_base = outcome_carbon(&base, &model, &act_week);
    let c_aware = outcome_carbon(&aware_outcome, &model, &act_week);
    assert!(
        c_aware.kilograms() < c_base.kilograms(),
        "forecast-driven deferral should still save: {c_aware:?} vs {c_base:?}"
    );
    let _ = week;
}

/// Minimal shim: a constant utilisation source for tests.
struct FlatUtil(f64);
impl iriscast::telemetry::UtilizationSource for FlatUtil {
    fn utilization(&self, _node: u64, _t: Timestamp) -> f64 {
        self.0
    }
}
