//! Integration tests for the scenario-space engine at scale: a
//! ≥10,000-point space evaluated serially and in parallel, queried, and
//! checked for consistency with the paper-shaped compat surface.

use iriscast::prelude::*;

fn dense_paper_space() -> Assessment {
    Assessment::builder()
        .energy(Energy::from_kilowatt_hours(19_380.0))
        .ci_axis(
            ScenarioAxis::linspace(
                "carbon intensity",
                Bounds::new(
                    CarbonIntensity::from_grams_per_kwh(50.0),
                    CarbonIntensity::from_grams_per_kwh(300.0),
                ),
                21,
            )
            .unwrap(),
        )
        .pue_values(&[1.1, 1.2, 1.3, 1.4, 1.5, 1.6])
        .embodied_linspace(
            Bounds::new(
                CarbonMass::from_kilograms(400.0),
                CarbonMass::from_kilograms(1_100.0),
            ),
            15,
        )
        .lifespan_linspace(3.0, 7.0, 9)
        .servers(2_398)
        .build()
        .unwrap()
}

#[test]
fn ten_thousand_point_space_evaluates_and_queries() {
    let assessment = dense_paper_space();
    assert_eq!(assessment.space().len(), 21 * 6 * 15 * 9);
    assert!(assessment.space().len() >= 10_000);

    let results = assessment.evaluate_space();
    assert_eq!(results.len(), assessment.space().len());

    // The dense sweep includes the paper's corner scenarios, so its
    // envelope reproduces §6's 1,441–11,711 kg range exactly.
    let env = results.envelope();
    assert!((env.total.lo.kilograms() - 1_441.320_744).abs() < 0.01);
    assert!((env.total.hi.kilograms() - 11_711.349_772).abs() < 0.01);

    // Percentiles are interior and ordered.
    let p5 = results.percentile(0.05).unwrap();
    let p95 = results.percentile(0.95).unwrap();
    assert!(env.total.lo < p5 && p5 < p95 && p95 < env.total.hi);

    // Every point is retrievable and self-consistent.
    let mid = results.get(results.len() / 2).unwrap();
    assert_eq!(
        mid.outcome.total(),
        mid.outcome.active + mid.outcome.embodied
    );
}

#[test]
fn quantile_paths_and_buffer_reuse_agree_end_to_end() {
    let assessment = dense_paper_space();
    let results = assessment.evaluate_space();

    // Cached, batch and one-shot quantiles agree on the full stack.
    let qs = [0.05, 0.25, 0.5, 0.75, 0.95];
    let batch = results.percentiles(&qs).unwrap();
    let oneshot = assessment.evaluate_space();
    for (&q, &b) in qs.iter().zip(&batch) {
        assert_eq!(results.percentile(q).unwrap(), b, "q = {q}");
        assert_eq!(oneshot.percentile_oneshot(q).unwrap(), b, "q = {q}");
    }
    let s = results.summary().unwrap();
    assert_eq!(s.median, results.percentile(0.5).unwrap());
    assert_eq!(s.min, results.envelope().total.lo);
    assert_eq!(s.mean, results.mean_total());

    // Invalid quantiles are typed errors on every path.
    assert!(results.percentile(1.01).is_err());
    assert!(results.percentile_oneshot(-0.5).is_err());
    assert!(results.percentiles(&[0.5, 2.0]).is_err());

    // Buffer reuse reproduces a fresh evaluation bit for bit.
    let mut reused = Assessment::builder()
        .energy(Energy::from_kilowatt_hours(1.0))
        .ci_grams_per_kwh(&[100.0])
        .pue_values(&[1.2])
        .embodied_linspace(
            Bounds::new(
                CarbonMass::from_kilograms(400.0),
                CarbonMass::from_kilograms(1_100.0),
            ),
            2,
        )
        .lifespan_linspace(3.0, 7.0, 2)
        .servers(10)
        .build()
        .unwrap()
        .evaluate_space();
    assessment.evaluate_space_into(&mut reused);
    assert_eq!(reused, results);
    assert_eq!(
        reused.percentile(0.95).unwrap(),
        results.percentile(0.95).unwrap()
    );
}

#[test]
fn parallel_equals_serial_on_large_space() {
    let assessment = dense_paper_space();
    let serial = assessment.evaluate_space();
    for threads in [0, 2, 5, 16] {
        let par = assessment.par_evaluate_space(threads);
        assert_eq!(serial, par, "threads = {threads}");
    }
}

#[test]
fn engine_envelope_matches_snapshot_adapter() {
    // The compat pipeline and a 3-sample-axis engine run must agree on
    // the §6 assessment exactly.
    let params = AssessmentParams::paper();
    let energy = Energy::from_kilowatt_hours(19_380.0);
    let snapshot = SnapshotAssessment::run(energy, &params);
    let results = params.engine(energy).unwrap().evaluate_space();
    assert_eq!(results.len(), 90);
    let env = results.envelope();
    assert_eq!(env.active, snapshot.assessment.active);
    assert_eq!(env.embodied, snapshot.assessment.embodied);
    assert_eq!(results.assessment().total(), snapshot.assessment.total());
}

#[test]
fn marginals_cover_the_space() {
    let results = dense_paper_space().evaluate_space();
    let env = results.envelope();
    for axis in AxisId::ALL {
        let marginals = results.marginals(axis);
        assert_eq!(marginals.len(), results.space().axis_len(axis));
        // The union of conditional envelopes is the joint envelope.
        let lo = marginals
            .iter()
            .map(|m| m.total.lo)
            .min_by(CarbonMass::total_cmp)
            .unwrap();
        let hi = marginals
            .iter()
            .map(|m| m.total.hi)
            .max_by(CarbonMass::total_cmp)
            .unwrap();
        assert_eq!(lo, env.total.lo, "{axis:?}");
        assert_eq!(hi, env.total.hi, "{axis:?}");
    }
}
